"""Quantum circuit container with CNOT accounting.

The circuit is a flat, ordered list of :class:`~repro.circuits.gates.Gate`
objects on a fixed register size.  The figure of merit throughout the paper is
the number of CNOT gates, exposed here as :attr:`Circuit.cnot_count`.

Simulation (``to_unitary`` / ``apply_to_statevector``) runs on a
tensor-contraction engine: the state (or the identity operator) is held as a
``(2,)*n`` (or ``(2,)*2n``) tensor and every gate is one ``np.tensordot``
contraction of its 2x2/4x4 matrix against the acted-on axes — no gate is ever
embedded into a dense ``2**n x 2**n`` matrix.  A fusion pass
(:func:`_fused_operations`) first merges runs of gates sharing at most two
qubits into a single 2x2/4x4 matrix, so long single-qubit chains and
basis-change/CNOT sandwiches cost one contraction instead of many.

Derived metrics (``cnot_count``, ``depth`` …) are memoized per circuit and
invalidated on every :meth:`append` (hence also ``extend``; ``compose``,
``copy`` and slicing build fresh circuits), so hot consumers — routing
metrics, Table-I accounting, benchmarks — pay the gate walk once.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.gates import Gate

#: Independent seeds for the ``equals_up_to_global_phase`` random probes.
_PROBE_SEEDS = (0x5EED, 0x5EED << 1, 0x5EED << 2)

#: Cap on the probe early-reject threshold: for unitaries U, V and a unit
#: probe ψ the deviation ||<Uψ|Vψ>| - 1| never exceeds 1, so an uncapped
#: ``dim * tolerance`` bound is vacuous at large dim.
_PROBE_DEVIATION_CAP = 0.1

_IDENTITY_2 = np.eye(2, dtype=complex)
_SWAP_4 = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


class Circuit:
    """An ordered sequence of gates on ``n_qubits`` qubits."""

    __slots__ = ("n_qubits", "_gates", "_metrics")

    def __init__(self, n_qubits: int, gates: Optional[Iterable[Gate]] = None):
        if n_qubits <= 0:
            raise ValueError("n_qubits must be positive")
        self.n_qubits = int(n_qubits)
        self._gates: List[Gate] = []
        self._metrics: Dict[str, object] = {}
        if gates:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append a gate, validating its qubits fit in the register."""
        if not isinstance(gate, Gate):
            raise TypeError(f"expected Gate, got {type(gate).__name__}")
        if any(q >= self.n_qubits or q < 0 for q in gate.qubits):
            raise ValueError(
                f"gate {gate} acts outside a register of {self.n_qubits} qubits"
            )
        self._gates.append(gate)
        if self._metrics:
            self._metrics.clear()
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Append every gate from an iterable."""
        for gate in gates:
            self.append(gate)
        return self

    def compose(self, other: "Circuit") -> "Circuit":
        """Return a new circuit running ``self`` then ``other``."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("cannot compose circuits on different register sizes")
        return Circuit(self.n_qubits, list(self._gates) + list(other._gates))

    def inverse(self) -> "Circuit":
        """Return the inverse circuit (reversed order of inverted gates)."""
        return Circuit(self.n_qubits, [gate.inverse() for gate in reversed(self._gates)])

    def copy(self) -> "Circuit":
        return Circuit(self.n_qubits, list(self._gates))

    def __add__(self, other: "Circuit") -> "Circuit":
        return self.compose(other)

    # ------------------------------------------------------------------
    # Accounting (memoized; every cache entry dies on the next append)
    # ------------------------------------------------------------------
    def _memo(self, key: str, compute):
        cached = self._metrics.get(key)
        if cached is None:
            cached = compute()
            self._metrics[key] = cached
        return cached

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return self._memo("gates", lambda: tuple(self._gates))

    @property
    def cnot_count(self) -> int:
        """Number of CNOT gates — the paper's primary cost metric."""
        return self._memo(
            "cnot_count", lambda: sum(1 for gate in self._gates if gate.is_cnot)
        )

    @property
    def two_qubit_count(self) -> int:
        """Number of two-qubit gates of any kind."""
        return self._memo(
            "two_qubit_count",
            lambda: sum(1 for gate in self._gates if gate.is_two_qubit),
        )

    @property
    def single_qubit_count(self) -> int:
        """Number of single-qubit gates."""
        return self._memo(
            "single_qubit_count",
            lambda: sum(1 for gate in self._gates if gate.is_single_qubit),
        )

    def count(self, name: str) -> int:
        """Number of gates with the given name."""
        return self.gate_histogram().get(name.upper(), 0)

    def _critical_path(self, two_qubit_only: bool) -> int:
        frontier = [0] * self.n_qubits
        for gate in self._gates:
            if two_qubit_only and not gate.is_two_qubit:
                continue
            layer = 1 + max(frontier[q] for q in gate.qubits)
            for q in gate.qubits:
                frontier[q] = layer
        return max(frontier, default=0)

    def depth(self) -> int:
        """Circuit depth assuming gates on disjoint qubits run in parallel."""
        return self._memo("depth", lambda: self._critical_path(two_qubit_only=False))

    def two_qubit_depth(self) -> int:
        """Depth counting only two-qubit gates (single-qubit gates are free).

        The critical-path length over CNOT/CZ/SWAP layers — the figure that
        dominates execution time and decoherence on hardware, reported by the
        routing benchmarks alongside :attr:`cnot_count`.
        """
        return self._memo(
            "two_qubit_depth", lambda: self._critical_path(two_qubit_only=True)
        )

    def gate_histogram(self) -> dict:
        """Gate counts by name, e.g. ``{"CNOT": 12, "H": 4, "RZ": 3}``.

        The returned dict is a fresh copy on every call; mutating it cannot
        poison the cache.
        """

        def compute():
            histogram: dict = {}
            for gate in self._gates:
                histogram[gate.name] = histogram.get(gate.name, 0) + 1
            return histogram

        return dict(self._memo("gate_histogram", compute))

    def qubits_used(self) -> Tuple[int, ...]:
        """Sorted tuple of qubits touched by at least one gate."""
        return tuple(sorted({q for gate in self._gates for q in gate.qubits}))

    def parameters(self) -> Tuple[float, ...]:
        """All rotation angles, in gate order."""
        return tuple(g.parameter for g in self._gates if g.parameter is not None)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Circuit(self.n_qubits, self._gates[index])
        return self._gates[index]

    # ------------------------------------------------------------------
    # Simulation / verification
    # ------------------------------------------------------------------
    def to_unitary(self) -> np.ndarray:
        """Dense unitary of the circuit (qubit 0 is the most significant bit).

        The identity operator is held as a ``(2,)*2n`` tensor (row axes first)
        and every fused operation is contracted against the row axes — one
        small ``tensordot`` per fused gate group, never an embedded
        ``2**n x 2**n`` gate matrix or a dense matmul.  Intended for
        verification on small registers; the cost is ``O(4**n_qubits)``
        memory.
        """
        n = self.n_qubits
        dim = 2 ** n
        tensor = np.eye(dim, dtype=complex).reshape((2,) * (2 * n))
        for qubits, matrix in self._fused():
            tensor = _apply_matrix_to_tensor(tensor, matrix, qubits, 2 * n)
        return tensor.reshape(dim, dim)

    def apply_to_statevector(self, state: np.ndarray) -> np.ndarray:
        """Apply the circuit to a statevector of length ``2**n_qubits``."""
        state = np.asarray(state, dtype=complex).reshape((2,) * self.n_qubits)
        for qubits, matrix in self._fused():
            state = _apply_matrix_to_tensor(state, matrix, qubits, self.n_qubits)
        return state.reshape(-1)

    def _fused(self) -> List[Tuple[Tuple[int, ...], np.ndarray]]:
        """Fused operation list, memoized like the other derived metrics."""
        return self._memo("fused_ops", lambda: _fused_operations(self._gates))

    def equals_up_to_global_phase(self, other: "Circuit", tolerance: float = 1e-8) -> bool:
        """True if the two circuits implement the same unitary up to global phase.

        A cheap pre-check first applies both circuits to a few fixed
        pseudo-random statevectors: genuinely different unitaries almost
        surely move them to states with overlap magnitude well below one, so
        the ``O(4**n)`` full-unitary comparison only runs for (near-)equal
        circuits.  The pre-check threshold is scaled so any pair the full
        entrywise check could accept is never rejected early — but it is
        capped, because the naive ``dim * tolerance`` Frobenius bound grows
        past the largest possible overlap deviation once ``dim`` is large,
        which would make the probe vacuous and send every comparison to the
        dense check.  Independent probes keep the false-accept odds of the
        cheap path negligible.
        """
        if other.n_qubits != self.n_qubits:
            return False
        dim = 2 ** self.n_qubits
        # Entrywise deviation <= tolerance on U†V - phase·I bounds the probe
        # overlap deviation by dim * tolerance (Frobenius bound); the cap
        # keeps the pre-check decisive at large dim, where the uncapped bound
        # exceeds the maximum deviation any probe could ever show.
        threshold = min(dim * tolerance, _PROBE_DEVIATION_CAP) + 1e-9
        for seed in _PROBE_SEEDS:
            rng = np.random.default_rng(seed)
            probe = rng.normal(size=dim) + 1j * rng.normal(size=dim)
            probe /= np.linalg.norm(probe)
            overlap = np.vdot(
                self.apply_to_statevector(probe), other.apply_to_statevector(probe)
            )
            if abs(abs(overlap) - 1.0) > threshold:
                return False
        u, v = self.to_unitary(), other.to_unitary()
        product = u.conj().T @ v
        phase = product[0, 0]
        if abs(abs(phase) - 1.0) > tolerance:
            return False
        return np.allclose(product, phase * np.eye(product.shape[0]), atol=tolerance)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Circuit(n_qubits={self.n_qubits}, gates={len(self._gates)}, "
            f"cnots={self.cnot_count})"
        )

    def summary(self) -> str:
        """One gate per line, for debugging and documentation examples."""
        return "\n".join(repr(gate) for gate in self._gates)


class _FusionGroup:
    """A run of gates confined to at most two qubits, fused into one matrix."""

    __slots__ = ("qubits", "gates", "position", "alive")

    def __init__(self, qubits: set, gates: List[Gate], position: int):
        self.qubits = qubits
        self.gates = gates
        self.position = position
        self.alive = True


def _fused_operations(gates: Sequence[Gate]) -> List[Tuple[Tuple[int, ...], np.ndarray]]:
    """Greedy adjacent-gate fusion: maximal runs sharing <= 2 qubits.

    Scans the gate list once, keeping for every qubit the most recent group
    acting on it.  A gate joins (and possibly merges) existing groups when the
    union of their qubit supports stays within two qubits AND each absorbed
    group is still the *last* group on every one of its qubits — that
    invariant guarantees no group emitted later touches the absorbed group's
    qubits, so moving its gates forward to the merge point crosses only
    disjoint (hence commuting) operations.  The merged group keeps the
    position of its latest member, preserving the circuit ordering exactly.
    """
    groups: List[_FusionGroup] = []
    last_on: Dict[int, _FusionGroup] = {}
    for gate in gates:
        owners: List[_FusionGroup] = []
        for qubit in gate.qubits:
            owner = last_on.get(qubit)
            if owner is not None and owner not in owners:
                owners.append(owner)
        union = set(gate.qubits)
        for owner in owners:
            union.update(owner.qubits)
        mergeable = (
            owners
            and len(union) <= 2
            and all(
                all(last_on.get(q) is owner for q in owner.qubits)
                for owner in owners
            )
        )
        if mergeable:
            # Fuse into the most recently *created* owner (owners arrive in
            # gate-qubit order, which need not match creation order); earlier
            # owners' gates are prepended — owners are pairwise disjoint, so
            # their relative order is free, and nothing created after any
            # owner touches its qubits, so moving gates forward to the latest
            # owner's position crosses only commuting groups.
            target = max(owners, key=lambda owner: owner.position)
            for owner in owners:
                if owner is target:
                    continue
                target.gates[:0] = owner.gates
                owner.alive = False
            target.qubits = union
            target.gates.append(gate)
            for qubit in union:
                last_on[qubit] = target
        else:
            group = _FusionGroup(set(gate.qubits), [gate], len(groups))
            groups.append(group)
            for qubit in gate.qubits:
                last_on[qubit] = group
    return [
        (tuple(sorted(group.qubits)), _group_matrix(tuple(sorted(group.qubits)), group.gates))
        for group in groups
        if group.alive
    ]


def _group_matrix(qubits: Tuple[int, ...], gates: List[Gate]) -> np.ndarray:
    """Fused matrix of a gate run on its (sorted) qubit tuple, qubit-0-as-MSB."""
    if len(qubits) == 1:
        if len(gates) == 1:
            return gates[0].matrix()
        matrix = _IDENTITY_2
        for gate in gates:
            matrix = gate.matrix() @ matrix
        return matrix
    if len(gates) == 1 and gates[0].qubits == qubits:
        return gates[0].matrix()
    position = {qubit: index for index, qubit in enumerate(qubits)}
    matrix = np.eye(4, dtype=complex)
    for gate in gates:
        small = gate.matrix()
        if gate.is_single_qubit:
            if position[gate.qubits[0]] == 0:
                small = np.kron(small, _IDENTITY_2)
            else:
                small = np.kron(_IDENTITY_2, small)
        elif position[gate.qubits[0]] == 1:
            # Wire order reversed relative to the sorted group tuple.
            small = _SWAP_4 @ small @ _SWAP_4
        matrix = small @ matrix
    return matrix


def _apply_matrix_to_tensor(
    tensor: np.ndarray, matrix: np.ndarray, axes: Tuple[int, ...], total: int
) -> np.ndarray:
    """Contract a 2x2/4x4 matrix against the given axes of a ``(2,)*total`` tensor."""
    k = len(axes)
    matrix = matrix.reshape((2,) * (2 * k))
    # Contract the matrix's input legs with the tensor's axes; tensordot
    # places the output legs first, followed by the untouched axes in their
    # original relative order.
    tensor = np.tensordot(matrix, tensor, axes=(list(range(k, 2 * k)), list(axes)))
    # Build the permutation that puts the new axes (0..k-1) back at `axes`.
    permutation = []
    rest = iter(range(k, total))
    for axis in range(total):
        if axis in axes:
            permutation.append(axes.index(axis))
        else:
            permutation.append(next(rest))
    return np.transpose(tensor, permutation)


def _apply_gate_to_tensor(state: np.ndarray, gate: Gate, n_qubits: int) -> np.ndarray:
    """Apply a gate to a state stored as an n-dimensional tensor of shape (2,)*n."""
    return _apply_matrix_to_tensor(state, gate.matrix(), gate.qubits, n_qubits)
