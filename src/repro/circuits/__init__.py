"""Quantum circuit intermediate representation, synthesis and optimization.

The subpackage provides:

* :class:`~repro.circuits.gates.Gate` and :class:`~repro.circuits.circuit.Circuit`
  — the CNOT + single-qubit gate IR whose CNOT count is the paper's metric;
* :func:`~repro.circuits.pauli_exponential.pauli_exponential_circuit` — the
  Fig. 3(b) template with a selectable target qubit;
* :func:`~repro.circuits.interface.interface_cnot_reduction` and
  :func:`~repro.circuits.interface.sequence_cnot_count` — the Sec. III-B
  cancellation accounting that feeds the GTSP edge weights;
* :func:`~repro.circuits.optimizer.optimize_circuit` — an exact peephole pass
  realizing cancellations at the gate level;
* :mod:`~repro.circuits.kak` — two-qubit invariants certifying minimal CNOT
  costs of residual interface blocks;
* :func:`~repro.circuits.linear_reversible.linear_reversible_circuit` — CNOT
  synthesis of GF(2) matrices (Γ circuits).
"""

from repro.circuits.circuit import Circuit
from repro.circuits.gates import (
    Gate,
    cnot,
    hadamard,
    pauli_x,
    pauli_y,
    pauli_z,
    rx,
    ry,
    rz,
    s_gate,
    sdg_gate,
)
from repro.circuits.interface import (
    GOOD_TARGET_COLLISIONS,
    MATCHING_CONTROL_COLLISIONS,
    best_sequence_from_cycle,
    interface_cnot_reduction,
    pair_cnot_count,
    sequence_cnot_count,
)
from repro.circuits.kak import (
    cnot_cost,
    gamma_matrix,
    interface_block_cost,
    is_local_gate,
    makhlin_invariants,
)
from repro.circuits.linear_reversible import circuit_to_matrix, linear_reversible_circuit
from repro.circuits.optimizer import (
    gates_commute,
    optimize_circuit,
    optimized_cnot_count,
    remove_identity_rotations,
)
from repro.circuits.pauli_exponential import (
    basis_change_gates,
    exponential_sequence_circuit,
    pauli_exponential_circuit,
    pauli_exponential_cnot_count,
)

__all__ = [
    "Circuit",
    "Gate",
    "cnot",
    "hadamard",
    "pauli_x",
    "pauli_y",
    "pauli_z",
    "rx",
    "ry",
    "rz",
    "s_gate",
    "sdg_gate",
    "pauli_exponential_circuit",
    "pauli_exponential_cnot_count",
    "exponential_sequence_circuit",
    "basis_change_gates",
    "interface_cnot_reduction",
    "pair_cnot_count",
    "sequence_cnot_count",
    "best_sequence_from_cycle",
    "GOOD_TARGET_COLLISIONS",
    "MATCHING_CONTROL_COLLISIONS",
    "optimize_circuit",
    "optimized_cnot_count",
    "remove_identity_rotations",
    "gates_commute",
    "cnot_cost",
    "makhlin_invariants",
    "gamma_matrix",
    "is_local_gate",
    "interface_block_cost",
    "linear_reversible_circuit",
    "circuit_to_matrix",
]
