"""Peephole circuit optimization: gate cancellation and rotation merging.

This pass realizes, at the explicit gate level, the CNOT cancellations the
paper's interface accounting predicts for matching basis changes: adjacent
inverse pairs are removed, rotations about the same axis are merged and gates
are allowed to commute past each other (commutation is checked exactly on the
gates' joint unitary) so that cancellations separated by irrelevant gates are
still found.

The pass never increases the CNOT count and terminates at a fixed point.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate

#: Rotation angle below which a rotation gate is considered the identity.
ANGLE_TOLERANCE = 1e-12

#: How far ahead the optimizer searches for a cancellation partner.
DEFAULT_WINDOW = 64


def gates_commute(first: Gate, second: Gate) -> bool:
    """Exact commutation check on the joint unitary of the two gates.

    The verdict only depends on the gate names, parameters and the *relative*
    qubit pattern, so the pair is remapped onto a canonical 1-3 qubit register
    and the result memoized — the optimizer re-asks the same questions
    thousands of times while commuting gates through a window.
    """
    shared = set(first.qubits) & set(second.qubits)
    if not shared:
        return True
    qubits = sorted(set(first.qubits) | set(second.qubits))
    index = {q: i for i, q in enumerate(qubits)}
    return _commute_canonical(_remap(first, index), _remap(second, index))


@lru_cache(maxsize=1 << 16)
def _commute_canonical(first: Gate, second: Gate) -> bool:
    n_qubits = 1 + max(max(first.qubits), max(second.qubits))
    circuit_ab = Circuit(n_qubits, [first, second])
    circuit_ba = Circuit(n_qubits, [second, first])
    # rtol must be zero: np.allclose's default relative tolerance (1e-5)
    # declares e.g. H and RZ(1e-5) commuting — their commutator is exactly of
    # order rtol * |entry| — and the optimizer then cancels through the
    # rotation, changing the unitary.
    return np.allclose(
        circuit_ab.to_unitary(), circuit_ba.to_unitary(), rtol=0.0, atol=1e-10
    )


def _remap(gate: Gate, index) -> Gate:
    return Gate(gate.name, tuple(index[q] for q in gate.qubits), gate.parameter)


def _try_cancel_or_merge(
    gates: List[Optional[Gate]], start: int, window: int
) -> bool:
    """Try to cancel/merge ``gates[start]`` with a later gate.  Returns True on success."""
    gate = gates[start]
    if gate is None:
        return False
    scanned = 0
    for later in range(start + 1, len(gates)):
        other = gates[later]
        if other is None:
            continue
        scanned += 1
        if scanned > window:
            return False
        # Exact inverse: remove both gates.
        if gate.is_inverse_of(other):
            gates[start] = None
            gates[later] = None
            return True
        # Same-axis rotations on the same qubit merge into one.  The merged
        # rotation must live at the *later* position: the scan has only
        # verified that ``gate`` commutes forward past the intervening gates,
        # not that ``other`` commutes backward past them.
        if (
            gate.is_parametrized
            and other.is_parametrized
            and gate.name == other.name
            and gate.qubits == other.qubits
        ):
            merged_angle = gate.parameter + other.parameter
            gates[start] = None
            if abs(math.remainder(merged_angle, 4 * math.pi)) <= ANGLE_TOLERANCE:
                gates[later] = None
            else:
                gates[later] = Gate(gate.name, gate.qubits, merged_angle)
            return True
        # Otherwise the search can continue only if the two gates commute.
        if not gates_commute(gate, other):
            return False
    return False


def optimize_circuit(circuit: Circuit, window: int = DEFAULT_WINDOW) -> Circuit:
    """Run cancellation/merge passes until no further reduction is found.

    Parameters
    ----------
    circuit:
        The circuit to optimize.
    window:
        Maximum number of (non-deleted) gates the optimizer commutes through
        while searching for a cancellation partner.

    Returns
    -------
    Circuit
        An equivalent circuit (same unitary up to global phase) with at most
        as many gates, and never more CNOTs, than the input.
    """
    gates: List[Optional[Gate]] = list(circuit.gates)
    changed = True
    while changed:
        changed = False
        for start in range(len(gates)):
            if gates[start] is None:
                continue
            if _try_cancel_or_merge(gates, start, window):
                changed = True
        gates = [g for g in gates if g is not None]
    return Circuit(circuit.n_qubits, [g for g in gates if g is not None])


def optimized_cnot_count(circuit: Circuit, window: int = DEFAULT_WINDOW) -> int:
    """CNOT count of the circuit after peephole optimization."""
    return optimize_circuit(circuit, window).cnot_count


def remove_identity_rotations(circuit: Circuit) -> Circuit:
    """Strip rotations whose angle is an integer multiple of 4π (exact identity)."""
    kept = []
    for gate in circuit.gates:
        if gate.is_parametrized and abs(math.remainder(gate.parameter, 4 * math.pi)) <= ANGLE_TOLERANCE:
            continue
        kept.append(gate)
    return Circuit(circuit.n_qubits, kept)
