"""Quantum gate primitives.

The library works in the de-facto near-term gate set of the paper:
CNOT plus arbitrary single-qubit gates.  A :class:`Gate` is an immutable
record of a named operation on specific qubits with an optional rotation
angle.  Dense matrices are provided for verification on small registers.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

#: Gate names considered self-inverse when parameter-free.
SELF_INVERSE_GATES = {"H", "X", "Y", "Z", "CNOT", "CZ", "SWAP"}

#: Names of gates diagonal in the computational (Z) basis.
Z_DIAGONAL_GATES = {"Z", "S", "SDG", "T", "TDG", "RZ"}

#: Names of gates diagonal in the X basis.
X_DIAGONAL_GATES = {"X", "RX", "SQRTX", "SQRTXDG"}

#: Single-qubit Clifford basis-change gates used by the Pauli-exponential template.
BASIS_CHANGE_GATES = {"H", "S", "SDG", "HSDG", "SH"}


def _matrix_h() -> np.ndarray:
    return np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)


def _matrix_rz(theta: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-0.5j * theta), 0], [0, cmath.exp(0.5j * theta)]], dtype=complex
    )


def _matrix_rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _matrix_ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


#: Matrices of parameter-free single-qubit gates.
_FIXED_SINGLE_QUBIT_MATRICES: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
    "H": _matrix_h(),
    "S": np.array([[1, 0], [0, 1j]], dtype=complex),
    "SDG": np.array([[1, 0], [0, -1j]], dtype=complex),
    "T": np.array([[1, 0], [0, cmath.exp(0.25j * math.pi)]], dtype=complex),
    "TDG": np.array([[1, 0], [0, cmath.exp(-0.25j * math.pi)]], dtype=complex),
    "SQRTX": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
    "SQRTXDG": 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex),
}

#: Matrices of parameter-free two-qubit gates (qubit order: first listed qubit
#: is the most significant bit).
_FIXED_TWO_QUBIT_MATRICES: Dict[str, np.ndarray] = {
    "CNOT": np.array(
        [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
    ),
    "CZ": np.diag([1, 1, 1, -1]).astype(complex),
    "SWAP": np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    ),
}

#: Names of supported parametrized gates mapped to their matrix factory.
_PARAMETRIZED_MATRICES = {
    "RZ": _matrix_rz,
    "RX": _matrix_rx,
    "RY": _matrix_ry,
}

#: Inverse names for parameter-free non-self-inverse gates.
_INVERSE_NAMES = {"S": "SDG", "SDG": "S", "T": "TDG", "TDG": "T", "SQRTX": "SQRTXDG", "SQRTXDG": "SQRTX"}

# Constant gate matrices are shared module-level arrays, frozen so a caller
# mutating what it (reasonably) assumes is a private copy fails loudly
# instead of corrupting every later Gate.matrix() call.
for _matrix in _FIXED_SINGLE_QUBIT_MATRICES.values():
    _matrix.setflags(write=False)
for _matrix in _FIXED_TWO_QUBIT_MATRICES.values():
    _matrix.setflags(write=False)
del _matrix


@lru_cache(maxsize=1024)
def _parametrized_matrix(name: str, parameter: float) -> np.ndarray:
    """Memoized matrix of a rotation gate, keyed on ``(name, parameter)``.

    Compilation reuses a handful of angles (±π/2, Trotter steps) across
    thousands of gates; the LRU turns each repeat into a dict hit.
    """
    matrix = _PARAMETRIZED_MATRICES[name](parameter)
    matrix.setflags(write=False)
    return matrix


@dataclass(frozen=True)
class Gate:
    """A named gate acting on an ordered tuple of qubits.

    Parameters
    ----------
    name:
        Upper-case gate name, e.g. ``"CNOT"``, ``"H"``, ``"RZ"``.
    qubits:
        Qubits the gate acts on.  For ``CNOT`` the order is ``(control, target)``.
    parameter:
        Rotation angle for ``RZ``/``RX``/``RY``; ``None`` otherwise.
    """

    name: str
    qubits: Tuple[int, ...]
    parameter: Optional[float] = None

    def __post_init__(self):
        object.__setattr__(self, "name", self.name.upper())
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name} acts on repeated qubits {self.qubits}")
        if self.name in _PARAMETRIZED_MATRICES and self.parameter is None:
            raise ValueError(f"gate {self.name} requires a rotation angle")
        known = (
            self.name in _FIXED_SINGLE_QUBIT_MATRICES
            or self.name in _FIXED_TWO_QUBIT_MATRICES
            or self.name in _PARAMETRIZED_MATRICES
        )
        if not known:
            raise ValueError(f"unknown gate name {self.name!r}")
        expected_arity = 2 if self.name in _FIXED_TWO_QUBIT_MATRICES else 1
        if len(self.qubits) != expected_arity:
            raise ValueError(
                f"gate {self.name} expects {expected_arity} qubit(s), got {len(self.qubits)}"
            )

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def is_cnot(self) -> bool:
        return self.name == "CNOT"

    @property
    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2

    @property
    def is_single_qubit(self) -> bool:
        return len(self.qubits) == 1

    @property
    def is_parametrized(self) -> bool:
        return self.parameter is not None

    @property
    def is_z_diagonal(self) -> bool:
        """True for single-qubit gates diagonal in the computational basis."""
        return self.name in Z_DIAGONAL_GATES

    @property
    def is_x_diagonal(self) -> bool:
        """True for single-qubit gates diagonal in the X basis."""
        return self.name in X_DIAGONAL_GATES

    @property
    def control(self) -> int:
        """Control qubit of a CNOT/CZ gate."""
        if not self.is_two_qubit:
            raise ValueError(f"gate {self.name} has no control qubit")
        return self.qubits[0]

    @property
    def target(self) -> int:
        """Target qubit of a CNOT gate."""
        if not self.is_two_qubit:
            raise ValueError(f"gate {self.name} has no target qubit")
        return self.qubits[1]

    # ------------------------------------------------------------------
    # Matrices and inverses
    # ------------------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """Dense matrix of the gate on its own qubits (2x2 or 4x4).

        The returned array is a shared, read-only cached instance (module
        constant for parameter-free gates, LRU entry keyed on
        ``(name, parameter)`` for rotations); ``.copy()`` it before writing.
        """
        if self.name in _PARAMETRIZED_MATRICES:
            return _parametrized_matrix(self.name, float(self.parameter))
        if self.name in _FIXED_SINGLE_QUBIT_MATRICES:
            return _FIXED_SINGLE_QUBIT_MATRICES[self.name]
        return _FIXED_TWO_QUBIT_MATRICES[self.name]

    def inverse(self) -> "Gate":
        """Return the inverse gate."""
        if self.name in _PARAMETRIZED_MATRICES:
            return Gate(self.name, self.qubits, -self.parameter)
        if self.name in SELF_INVERSE_GATES or self.name == "I":
            return self
        if self.name in _INVERSE_NAMES:
            return Gate(_INVERSE_NAMES[self.name], self.qubits)
        raise ValueError(f"no inverse rule for gate {self.name}")

    def is_inverse_of(self, other: "Gate", angle_tolerance: float = 1e-12) -> bool:
        """True if composing with ``other`` yields the identity."""
        if self.qubits != other.qubits:
            return False
        inverse = self.inverse()
        if inverse.name != other.name:
            return False
        if inverse.parameter is None and other.parameter is None:
            return True
        if inverse.parameter is None or other.parameter is None:
            return False
        return abs(inverse.parameter - other.parameter) <= angle_tolerance

    def commutes_disjointly_with(self, other: "Gate") -> bool:
        """True if the two gates act on disjoint qubit sets (hence commute)."""
        return not set(self.qubits) & set(other.qubits)

    def __repr__(self) -> str:
        if self.parameter is None:
            return f"{self.name}{self.qubits}"
        return f"{self.name}({self.parameter:.6g}){self.qubits}"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def cnot(control: int, target: int) -> Gate:
    """CNOT gate with the given control and target."""
    return Gate("CNOT", (control, target))


def hadamard(qubit: int) -> Gate:
    return Gate("H", (qubit,))


def pauli_x(qubit: int) -> Gate:
    return Gate("X", (qubit,))


def pauli_y(qubit: int) -> Gate:
    return Gate("Y", (qubit,))


def pauli_z(qubit: int) -> Gate:
    return Gate("Z", (qubit,))


def s_gate(qubit: int) -> Gate:
    return Gate("S", (qubit,))


def sdg_gate(qubit: int) -> Gate:
    return Gate("SDG", (qubit,))


def rz(qubit: int, angle: float) -> Gate:
    return Gate("RZ", (qubit,), angle)


def rx(qubit: int, angle: float) -> Gate:
    return Gate("RX", (qubit,), angle)


def ry(qubit: int, angle: float) -> Gate:
    return Gate("RY", (qubit,), angle)
