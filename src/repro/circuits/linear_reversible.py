"""Linear reversible (CNOT-only) circuits from GF(2) matrices.

Thin circuit-level wrapper around the GF(2) synthesis routines in
:mod:`repro.transforms.binary`: a Γ matrix becomes an explicit CNOT circuit,
which is how the one-time basis-change cost of the generalized
fermion-to-qubit transformation would be paid on hardware (the paper treats Γ
as a compile-time relabeling, so this cost never enters the reported counts,
but the circuit is provided for completeness and for simulator-level checks).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import cnot
from repro.transforms.binary import (
    as_gf2,
    cnot_network_matrix,
    synthesize_cnot_network,
    synthesize_cnot_network_pmh,
)


def linear_reversible_circuit(matrix: np.ndarray, method: str = "best") -> Circuit:
    """Synthesize a CNOT circuit implementing the invertible GF(2) matrix.

    Parameters
    ----------
    matrix:
        Invertible binary matrix Γ.
    method:
        ``"gaussian"`` for plain Gauss-Jordan elimination, ``"pmh"`` for
        Patel-Markov-Hayes, ``"best"`` (default) for whichever is shorter.
    """
    matrix = as_gf2(matrix)
    n = matrix.shape[0]
    if method == "gaussian":
        gates = synthesize_cnot_network(matrix)
    elif method == "pmh":
        gates = synthesize_cnot_network_pmh(matrix)
    elif method == "best":
        gaussian = synthesize_cnot_network(matrix)
        pmh = synthesize_cnot_network_pmh(matrix)
        gates = pmh if len(pmh) < len(gaussian) else gaussian
    else:
        raise ValueError(f"unknown synthesis method {method!r}")
    circuit = Circuit(max(n, 1))
    for control, target in gates:
        circuit.append(cnot(control, target))
    return circuit


def circuit_to_matrix(circuit: Circuit) -> np.ndarray:
    """Recover the GF(2) matrix implemented by a CNOT-only circuit."""
    pairs = []
    for gate in circuit.gates:
        if not gate.is_cnot:
            raise ValueError("circuit contains non-CNOT gates")
        pairs.append((gate.control, gate.target))
    return cnot_network_matrix(circuit.n_qubits, pairs)
