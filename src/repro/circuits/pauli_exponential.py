"""Circuit synthesis for Pauli-string exponentials.

Implements the template of Fig. 3(b) of the paper: the unitary
``exp(-i θ/2 · P)`` for a Pauli string ``P`` is synthesized by

1. rotating every non-identity factor into the Z basis with single-qubit
   Clifford gates ``M`` (H for X, S† then H for Y, nothing for Z),
2. a CNOT "star" from every non-target support qubit onto a chosen target
   qubit,
3. ``Rz(θ)`` on the target,
4. undoing the CNOT star and the basis changes.

The CNOT count is ``2 (w - 1)`` where ``w`` is the Pauli weight.  The paper's
*advanced sorting* exploits the freedom in both the target-qubit choice and
the order of CNOTs inside the star to cancel gates between consecutive
exponentials.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, cnot, hadamard, rz, s_gate, sdg_gate
from repro.operators import PauliString


def basis_change_gates(label: str, qubit: int) -> Tuple[List[Gate], List[Gate]]:
    """Return the (pre, post) single-qubit gates rotating ``label`` into Z.

    The pre gates are applied before the Z-basis rotation (circuit order) and
    the post gates after, such that ``post · Rz · pre = exp(-i θ/2 σ_label)``.
    """
    if label == "X":
        return [hadamard(qubit)], [hadamard(qubit)]
    if label == "Y":
        return [sdg_gate(qubit), hadamard(qubit)], [hadamard(qubit), s_gate(qubit)]
    if label == "Z":
        return [], []
    raise ValueError(f"no basis change for Pauli label {label!r}")


def validate_target(string: PauliString, target: Optional[int]) -> int:
    """Check (or choose) a valid target qubit for exponentiating ``string``."""
    support = string.support
    if not support:
        raise ValueError("cannot exponentiate the identity string into a circuit")
    if target is None:
        return support[-1]
    if target not in support:
        raise ValueError(
            f"target qubit {target} is not in the support {support} of {string.to_label()}"
        )
    return target


def pauli_exponential_circuit(
    string: PauliString,
    angle: float,
    target: Optional[int] = None,
    control_order: Optional[Sequence[int]] = None,
) -> Circuit:
    """Synthesize ``exp(-i angle/2 · string)`` with the staircase template.

    Parameters
    ----------
    string:
        The Pauli string ``P``.
    angle:
        The rotation angle θ.
    target:
        Target qubit carrying the ``Rz``; must act non-trivially in ``P``.
        Defaults to the highest-index support qubit.
    control_order:
        Order in which the non-target support qubits are CNOT-ed onto the
        target (entangling order).  The un-computation uses the reverse
        order.  Defaults to ascending qubit index.

    Returns
    -------
    Circuit
        A circuit on ``string.n_qubits`` qubits using ``2 (w - 1)`` CNOTs.
    """
    n = string.n_qubits
    circuit = Circuit(n)
    if string.is_identity:
        # exp(-i θ/2 I) is a global phase; nothing to synthesize.
        return circuit
    target = validate_target(string, target)
    controls = [q for q in string.support if q != target]
    if control_order is not None:
        control_order = [int(q) for q in control_order]
        if sorted(control_order) != sorted(controls):
            raise ValueError(
                f"control_order {control_order} must be a permutation of {controls}"
            )
        controls = control_order

    pre_gates: List[Gate] = []
    post_gates: List[Gate] = []
    for qubit in string.support:
        pre, post = basis_change_gates(string[qubit], qubit)
        pre_gates.extend(pre)
        post_gates.extend(post)

    circuit.extend(pre_gates)
    for control in controls:
        circuit.append(cnot(control, target))
    circuit.append(rz(target, angle))
    for control in reversed(controls):
        circuit.append(cnot(control, target))
    circuit.extend(post_gates)
    return circuit


def pauli_exponential_cnot_count(string: PauliString) -> int:
    """CNOT count of exponentiating a single string with the template."""
    weight = string.weight
    return 0 if weight <= 1 else 2 * (weight - 1)


def exponential_sequence_circuit(
    terms: Sequence[Tuple[PauliString, float, Optional[int]]],
    n_qubits: Optional[int] = None,
) -> Circuit:
    """Concatenate exponential circuits for an ordered list of ``(P, θ, target)``.

    No inter-term optimization is applied here; run the peephole optimizer
    (:mod:`repro.circuits.optimizer`) on the result to realize the gate
    cancellations the paper's advanced sorting exposes.
    """
    if not terms:
        raise ValueError("term list is empty")
    if n_qubits is None:
        n_qubits = terms[0][0].n_qubits
    circuit = Circuit(n_qubits)
    for string, angle, target in terms:
        if string.n_qubits != n_qubits:
            raise ValueError("all strings must act on the same register size")
        circuit = circuit.compose(pauli_exponential_circuit(string, angle, target))
    return circuit
