"""Variational quantum eigensolver with a Trotterized UCC ansatz.

Implements the computational loop of Fig. 1 of the paper: the ansatz is grown
one HMP2-ranked excitation term at a time, the parameters are re-optimized
after every addition (with warm starts), and the loop stops once the energy
estimate is within a threshold — chemical accuracy by default — of the exact
ground state, or once a maximum ansatz size is reached.

The "quantum computer" is an exact sparse statevector simulation, so the
energies reported here correspond to the noiseless, infinite-shot limit the
paper's Fig. 5 assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import minimize

from repro.chemistry import MolecularHamiltonian
from repro.simulator import (
    CHEMICAL_ACCURACY,
    apply_exponential,
    expectation_value,
    fci_ground_state_energy,
    hartree_fock_state,
)
from repro.simulator.statevector import fermion_sparse
from repro.transforms import jordan_wigner
from repro.vqe.uccsd import ExcitationTerm


@dataclass
class UccAnsatz:
    """A Trotterized UCC ansatz: an ordered list of excitation terms.

    The prepared state is ``Π_k exp(θ_k (T_k - T_k†)) |HF⟩`` with the product
    applied left-to-right in list order (term 0 acts on the reference first).
    """

    n_qubits: int
    n_electrons: int
    terms: List[ExcitationTerm] = field(default_factory=list)

    def __post_init__(self):
        self._generators: List[sparse.csr_matrix] = [
            self._build_generator(term) for term in self.terms
        ]
        # Reference determinant and a reusable work buffer: the optimizer
        # calls prepare_state once per energy evaluation, so the reference is
        # built once and copied into one preallocated array instead of
        # allocating a fresh 2**n vector every iteration.
        self._reference: Optional[np.ndarray] = None
        self._state_buffer: Optional[np.ndarray] = None

    def _build_generator(self, term: ExcitationTerm) -> sparse.csr_matrix:
        if term.max_spin_orbital() >= self.n_qubits:
            raise ValueError(
                f"term {term} acts outside a register of {self.n_qubits} spin orbitals"
            )
        return fermion_sparse(term.generator(1.0), self.n_qubits)

    @property
    def n_parameters(self) -> int:
        return len(self.terms)

    def add_term(self, term: ExcitationTerm) -> None:
        """Append an excitation term (growing the ansatz by one parameter)."""
        self._generators.append(self._build_generator(term))
        self.terms.append(term)

    def reference_state(self) -> np.ndarray:
        """The Hartree-Fock reference determinant."""
        return hartree_fock_state(self.n_qubits, self.n_electrons)

    def prepare_state(self, parameters: Sequence[float]) -> np.ndarray:
        """Apply the parametrized ansatz to the reference state."""
        parameters = np.asarray(parameters, dtype=float)
        if parameters.size != self.n_parameters:
            raise ValueError(
                f"expected {self.n_parameters} parameters, got {parameters.size}"
            )
        if self._reference is None:
            self._reference = self.reference_state()
            self._state_buffer = np.empty_like(self._reference)
        state = self._state_buffer
        np.copyto(state, self._reference)
        applied = False
        for parameter, generator in zip(parameters, self._generators):
            if abs(parameter) < 1e-14:
                continue
            state = apply_exponential(generator, state, scale=float(parameter))
            applied = True
        # Every applied exponential returns a fresh array; only the untouched
        # reference path must be copied out of the shared buffer.
        return state if applied else state.copy()

    def energy(self, parameters: Sequence[float], hamiltonian_sparse: sparse.spmatrix) -> float:
        """Energy expectation of the prepared state."""
        return expectation_value(hamiltonian_sparse, self.prepare_state(parameters))


@dataclass
class VqeResult:
    """Result of optimizing a fixed-size ansatz."""

    energy: float
    parameters: np.ndarray
    n_iterations: int
    success: bool


@dataclass
class AdaptiveVqeResult:
    """Result of the full Fig. 1 loop (ansatz grown term by term)."""

    energies: List[float]
    n_terms: List[int]
    parameters: np.ndarray
    terms: List[ExcitationTerm]
    exact_energy: float
    converged: bool

    @property
    def final_energy(self) -> float:
        return self.energies[-1]

    def errors(self) -> List[float]:
        """Absolute errors against the exact ground-state energy."""
        return [abs(energy - self.exact_energy) for energy in self.energies]


def hamiltonian_sparse_matrix(hamiltonian: MolecularHamiltonian) -> sparse.csr_matrix:
    """Jordan-Wigner sparse matrix of a molecular Hamiltonian."""
    qubit_hamiltonian = jordan_wigner(
        hamiltonian.to_fermion_operator(), n_modes=hamiltonian.n_spin_orbitals
    )
    return qubit_hamiltonian.to_sparse()


def optimize_ansatz(
    ansatz: UccAnsatz,
    hamiltonian_sparse: sparse.spmatrix,
    initial_parameters: Optional[Sequence[float]] = None,
    method: str = "BFGS",
    maxiter: int = 200,
) -> VqeResult:
    """Classically optimize the ansatz parameters to minimize the energy."""
    if initial_parameters is None:
        initial_parameters = np.zeros(ansatz.n_parameters)
    initial_parameters = np.asarray(initial_parameters, dtype=float)
    if ansatz.n_parameters == 0:
        energy = expectation_value(hamiltonian_sparse, ansatz.reference_state())
        return VqeResult(energy=energy, parameters=np.zeros(0), n_iterations=0, success=True)

    result = minimize(
        lambda parameters: ansatz.energy(parameters, hamiltonian_sparse),
        initial_parameters,
        method=method,
        options={"maxiter": maxiter},
    )
    return VqeResult(
        energy=float(result.fun),
        parameters=np.asarray(result.x, dtype=float),
        n_iterations=int(getattr(result, "nit", 0)),
        success=bool(result.success),
    )


def adaptive_vqe(
    hamiltonian: MolecularHamiltonian,
    ranked_terms: Sequence[ExcitationTerm],
    max_terms: Optional[int] = None,
    threshold: float = CHEMICAL_ACCURACY,
    exact_energy: Optional[float] = None,
    method: str = "BFGS",
    maxiter: int = 200,
) -> AdaptiveVqeResult:
    """Run the Fig. 1 VQE loop, growing the ansatz in HMP2 order.

    Parameters
    ----------
    hamiltonian:
        Molecular Hamiltonian (active space) to solve.
    ranked_terms:
        Excitation terms in decreasing order of importance (HMP2 ordering).
    max_terms:
        Maximum ansatz size; defaults to using every provided term.
    threshold:
        Stop when ``|E - E_exact| <= threshold`` (chemical accuracy default).
    exact_energy:
        Exact ground-state energy; computed by sparse FCI when omitted.
    """
    if max_terms is None:
        max_terms = len(ranked_terms)
    max_terms = min(max_terms, len(ranked_terms))
    if exact_energy is None:
        exact_energy = fci_ground_state_energy(hamiltonian)

    matrix = hamiltonian_sparse_matrix(hamiltonian)
    ansatz = UccAnsatz(
        n_qubits=hamiltonian.n_spin_orbitals, n_electrons=hamiltonian.n_electrons, terms=[]
    )
    energies: List[float] = []
    term_counts: List[int] = []
    parameters = np.zeros(0)
    converged = False

    for index in range(max_terms):
        ansatz.add_term(ranked_terms[index])
        warm_start = np.concatenate([parameters, [0.0]])
        result = optimize_ansatz(
            ansatz, matrix, initial_parameters=warm_start, method=method, maxiter=maxiter
        )
        parameters = result.parameters
        energies.append(result.energy)
        term_counts.append(ansatz.n_parameters)
        if abs(result.energy - exact_energy) <= threshold:
            converged = True
            break

    return AdaptiveVqeResult(
        energies=energies,
        n_terms=term_counts,
        parameters=parameters,
        terms=list(ansatz.terms),
        exact_energy=float(exact_energy),
        converged=converged,
    )
