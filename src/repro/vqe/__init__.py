"""VQE layer: UCCSD excitation terms, HMP2 ordering and the adaptive loop of Fig. 1."""

from repro.vqe.hmp2 import hmp2_ranked_terms, select_ansatz_terms
from repro.vqe.uccsd import ExcitationTerm, is_spin_pair, uccsd_excitation_terms
from repro.vqe.vqe import (
    AdaptiveVqeResult,
    UccAnsatz,
    VqeResult,
    adaptive_vqe,
    hamiltonian_sparse_matrix,
    optimize_ansatz,
)

__all__ = [
    "ExcitationTerm",
    "is_spin_pair",
    "uccsd_excitation_terms",
    "hmp2_ranked_terms",
    "select_ansatz_terms",
    "UccAnsatz",
    "VqeResult",
    "AdaptiveVqeResult",
    "optimize_ansatz",
    "adaptive_vqe",
    "hamiltonian_sparse_matrix",
]
