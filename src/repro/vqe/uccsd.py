"""UCCSD excitation terms.

The unitary coupled-cluster singles-doubles ansatz is built from excitation
terms ``Z1 = Σ θ_pr a†_p a_r`` (singles, virtual p, occupied r) and
``Z2 = Σ θ_pqrs a†_p a†_q a_r a_s`` (doubles).  Each term contributes the
anti-hermitian generator ``θ (T - T†)`` to the Trotterized ansatz circuit.

The classes here carry exactly the index structure the paper's optimizations
act on: whether the creation (or annihilation) pair of a double excitation is
a same-spatial-orbital spin pair ``(2p, 2p+1)`` decides whether the term is
bosonic, hybrid or fermionic (Sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.operators import FermionOperator


def is_spin_pair(index_low: int, index_high: int) -> bool:
    """True if the two spin orbitals are the α/β pair of one spatial orbital.

    With interleaved spin ordering that means ``(2k, 2k+1)``; this is the
    "spin degree of freedom" pair symmetry the paper restricts its bosonic and
    hybrid compression to.
    """
    low, high = sorted((index_low, index_high))
    return high == low + 1 and low % 2 == 0


@dataclass(frozen=True)
class ExcitationTerm:
    """A single UCCSD excitation term ``a†_{c1} (a†_{c2}) a_{a1} (a_{a2})``.

    Parameters
    ----------
    creation:
        Spin orbitals the excitation creates particles in (1 for singles,
        2 for doubles), stored in ascending order.
    annihilation:
        Spin orbitals the excitation annihilates particles from, ascending.
    importance:
        Optional HMP2 ranking weight (larger = more important).
    """

    creation: Tuple[int, ...]
    annihilation: Tuple[int, ...]
    importance: float = 0.0

    def __post_init__(self):
        creation = tuple(sorted(int(i) for i in self.creation))
        annihilation = tuple(sorted(int(i) for i in self.annihilation))
        if len(creation) != len(annihilation):
            raise ValueError("creation and annihilation index counts must match")
        if len(creation) not in (1, 2):
            raise ValueError("only single and double excitations are supported")
        if len(set(creation)) != len(creation) or len(set(annihilation)) != len(annihilation):
            raise ValueError("repeated indices in an excitation term")
        if set(creation) & set(annihilation):
            raise ValueError("creation and annihilation indices must be disjoint")
        object.__setattr__(self, "creation", creation)
        object.__setattr__(self, "annihilation", annihilation)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_single(self) -> bool:
        return len(self.creation) == 1

    @property
    def is_double(self) -> bool:
        return len(self.creation) == 2

    @property
    def creation_is_spin_pair(self) -> bool:
        """True if the creation indices form a same-spatial-orbital spin pair."""
        return self.is_double and is_spin_pair(*self.creation)

    @property
    def annihilation_is_spin_pair(self) -> bool:
        """True if the annihilation indices form a same-spatial-orbital spin pair."""
        return self.is_double and is_spin_pair(*self.annihilation)

    @property
    def encoding_class(self) -> str:
        """Paper classification: ``"bosonic"``, ``"hybrid"`` or ``"fermionic"``.

        Doubles whose creation *and* annihilation pairs are both spin pairs are
        bosonic (both pairs compressible); exactly one spin pair makes the term
        hybrid; everything else (and every single excitation) is fermionic.
        """
        if not self.is_double:
            return "fermionic"
        pair_flags = (self.creation_is_spin_pair, self.annihilation_is_spin_pair)
        if all(pair_flags):
            return "bosonic"
        if any(pair_flags):
            return "hybrid"
        return "fermionic"

    @property
    def spin_orbitals(self) -> Tuple[int, ...]:
        """All spin orbitals the term touches, ascending."""
        return tuple(sorted(self.creation + self.annihilation))

    def max_spin_orbital(self) -> int:
        return max(self.spin_orbitals)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def excitation_operator(self, coefficient: float = 1.0) -> FermionOperator:
        """The bare excitation ``T`` (not yet anti-hermitian)."""
        if self.is_single:
            return FermionOperator.single_excitation(
                self.creation[0], self.annihilation[0], coefficient
            )
        p, q = self.creation
        # Store as a†_p a†_q a_s a_r with (r, s) = annihilation indices; the
        # exact index order only affects the sign convention of θ.
        r, s = self.annihilation
        return FermionOperator.double_excitation(p, q, s, r, coefficient)

    def generator(self, parameter: float = 1.0) -> FermionOperator:
        """Anti-hermitian generator ``θ (T - T†)`` of the ansatz factor."""
        excitation = self.excitation_operator(parameter)
        return excitation - excitation.hermitian_conjugate()

    def __repr__(self) -> str:
        daggers = " ".join(f"a^{i}" for i in self.creation)
        plain = " ".join(f"a{i}" for i in self.annihilation)
        return f"ExcitationTerm({daggers} {plain}, class={self.encoding_class})"


def uccsd_excitation_terms(
    n_spin_orbitals: int,
    n_electrons: int,
    include_singles: bool = True,
    spin_preserving: bool = True,
) -> List[ExcitationTerm]:
    """Enumerate all UCCSD excitation terms for a Hartree-Fock reference.

    Occupied spin orbitals are ``0 .. n_electrons - 1``; virtual ones are the
    rest.  With ``spin_preserving`` (default) only excitations conserving the
    z-projection of spin are generated, matching standard UCCSD.
    """
    if n_electrons < 0 or n_electrons > n_spin_orbitals:
        raise ValueError("invalid electron count")
    occupied = list(range(n_electrons))
    virtual = list(range(n_electrons, n_spin_orbitals))
    terms: List[ExcitationTerm] = []

    def spin(index: int) -> int:
        return index % 2

    if include_singles:
        for i in occupied:
            for a in virtual:
                if spin_preserving and spin(i) != spin(a):
                    continue
                terms.append(ExcitationTerm(creation=(a,), annihilation=(i,)))

    for index_i, i in enumerate(occupied):
        for j in occupied[index_i + 1:]:
            for index_a, a in enumerate(virtual):
                for b in virtual[index_a + 1:]:
                    if spin_preserving and spin(i) + spin(j) != spin(a) + spin(b):
                        continue
                    terms.append(ExcitationTerm(creation=(a, b), annihilation=(i, j)))
    return terms
