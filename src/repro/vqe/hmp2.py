"""HMP2-style selection and ordering of UCCSD excitation terms.

Box 2 of Fig. 1 in the paper (and reference [9]) uses second-order
perturbation theory both to improve the energy estimate and to decide which
excitation term to add next to the ansatz.  The classical part of that
procedure is reproduced here: double excitations are ranked by the magnitude
of their MP2 pair-energy contribution, and single excitations (which vanish
at second order for a Hartree-Fock reference, by Brillouin's theorem) are
ranked afterwards by the magnitude of the corresponding Fock-like one-body
coupling.
"""

from __future__ import annotations

from typing import List, Optional

from repro.chemistry import MolecularHamiltonian
from repro.chemistry.mp2 import ranked_double_excitations
from repro.vqe.uccsd import ExcitationTerm, uccsd_excitation_terms


def hmp2_ranked_terms(
    hamiltonian: MolecularHamiltonian,
    include_singles: bool = True,
    spin_preserving: bool = True,
) -> List[ExcitationTerm]:
    """All UCCSD excitation terms ranked by decreasing HMP2 importance.

    Doubles come first, ordered by MP2 pair-energy magnitude; singles follow,
    ordered by the one-body coupling between the occupied and virtual spin
    orbitals (typically tiny for a converged Hartree-Fock reference).
    """
    n_spin = hamiltonian.n_spin_orbitals
    n_electrons = hamiltonian.n_electrons

    terms: List[ExcitationTerm] = []
    for amplitude in ranked_double_excitations(hamiltonian):
        i, j = amplitude.occupied
        a, b = amplitude.virtual
        if spin_preserving and (i % 2 + j % 2) != (a % 2 + b % 2):
            continue
        terms.append(
            ExcitationTerm(
                creation=(a, b), annihilation=(i, j), importance=amplitude.importance
            )
        )

    if include_singles:
        singles: List[ExcitationTerm] = []
        for i in range(n_electrons):
            for a in range(n_electrons, n_spin):
                if spin_preserving and i % 2 != a % 2:
                    continue
                coupling = abs(float(hamiltonian.one_body[a, i]))
                singles.append(
                    ExcitationTerm(creation=(a,), annihilation=(i,), importance=coupling)
                )
        singles.sort(key=lambda term: -term.importance)
        terms.extend(singles)

    # Doubles whose MP2 contribution vanishes by symmetry are appended last
    # (importance zero) so the full UCCSD pool remains reachable.
    seen = {(term.creation, term.annihilation) for term in terms}
    for term in uccsd_excitation_terms(
        n_spin, n_electrons, include_singles=False, spin_preserving=spin_preserving
    ):
        if (term.creation, term.annihilation) not in seen:
            terms.append(term)
    return terms


def select_ansatz_terms(
    hamiltonian: MolecularHamiltonian,
    n_terms: Optional[int] = None,
    include_singles: bool = True,
) -> List[ExcitationTerm]:
    """The ``n_terms`` most important excitation terms in HMP2 order.

    This is the term list the compilation pipeline (Fig. 2) consumes: the
    Table-I rows labelled ``H2O(M)`` correspond to the first ``M`` terms of
    this ordering for the water molecule.
    """
    ranked = hmp2_ranked_terms(hamiltonian, include_singles=include_singles)
    if n_terms is None:
        return ranked
    if n_terms < 0:
        raise ValueError("n_terms must be non-negative")
    return ranked[:n_terms]
