"""Batched symplectic (bit-packed) Pauli operations over numpy.

:class:`~repro.operators.pauli.PauliString` stores one string as two
arbitrary-precision bit-mask integers.  The compilation hot paths — pairwise
commutation scans, the GTSP interface-cancellation cost matrices of the
advanced sorting, and the Γ-search inner loop — need those operations over
*many* strings at once.  This module packs a string collection into
``(m, words)`` ``uint64`` arrays (64 qubits per word) and evaluates the
pairwise quantities as whole-matrix numpy bit operations:

* :func:`commutation_matrix` — the symplectic inner product
  ``x_a·z_b + z_a·x_b (mod 2)`` for every pair,
* :func:`weight_vector` / :func:`overlap_matrix` — Pauli weights and
  support-overlap sizes,
* :func:`interface_reduction_matrix` — the ω-rule CNOT savings of
  Sec. III-B for every ordered pair of targeted strings (the GTSP edge
  weights of :mod:`repro.core.advanced_sorting`).

All functions accept either a :class:`PackedPaulis` or any iterable of
:class:`PauliString` (packed on the fly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.operators.pauli import PauliString

#: Qubits per packed word.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1


def _pack_masks(masks: Sequence[int], n_words: int) -> np.ndarray:
    """Pack arbitrary-precision bit-mask ints into an ``(m, n_words)`` uint64 array."""
    out = np.zeros((len(masks), n_words), dtype=np.uint64)
    for row, mask in enumerate(masks):
        word = 0
        while mask:
            out[row, word] = mask & _WORD_MASK
            mask >>= WORD_BITS
            word += 1
    return out


@dataclass(frozen=True)
class PackedPaulis:
    """A collection of Pauli strings as packed ``uint64`` X/Z bit-planes.

    ``x[i, w]`` holds qubits ``64 w .. 64 w + 63`` of string ``i``'s X mask
    (bit ``q - 64 w`` inside the word), and likewise ``z``.
    """

    n_qubits: int
    x: np.ndarray
    z: np.ndarray

    @classmethod
    def from_strings(cls, strings: Iterable[PauliString]) -> "PackedPaulis":
        strings = list(strings)
        if not strings:
            return cls(n_qubits=0, x=np.zeros((0, 1), dtype=np.uint64),
                       z=np.zeros((0, 1), dtype=np.uint64))
        n = strings[0].n_qubits
        for string in strings:
            if string.n_qubits != n:
                raise ValueError("all strings must act on the same register size")
        n_words = max(1, -(-n // WORD_BITS))
        return cls(
            n_qubits=n,
            x=_pack_masks([s.x_mask for s in strings], n_words),
            z=_pack_masks([s.z_mask for s in strings], n_words),
        )

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def n_words(self) -> int:
        return self.x.shape[1]

    def to_strings(self) -> List[PauliString]:
        """Unpack back into :class:`PauliString` objects."""
        result = []
        for row in range(len(self)):
            x = 0
            z = 0
            for word in range(self.n_words - 1, -1, -1):
                x = (x << WORD_BITS) | int(self.x[row, word])
                z = (z << WORD_BITS) | int(self.z[row, word])
            result.append(PauliString.from_bitmasks(self.n_qubits, x, z))
        return result


Packable = Union[PackedPaulis, Iterable[PauliString]]


def _as_packed(strings: Packable) -> PackedPaulis:
    if isinstance(strings, PackedPaulis):
        return strings
    return PackedPaulis.from_strings(strings)


def _popcount_pairwise(a: np.ndarray, b: np.ndarray, op) -> np.ndarray:
    """Sum of per-word popcounts of ``op(a[i], b[j])`` for every pair (i, j)."""
    combined = op(a[:, None, :], b[None, :, :])
    return np.bitwise_count(combined).sum(axis=-1, dtype=np.int64)


def weight_vector(strings: Packable) -> np.ndarray:
    """Pauli weight of every string, as an ``(m,)`` int array."""
    packed = _as_packed(strings)
    return np.bitwise_count(packed.x | packed.z).sum(axis=-1, dtype=np.int64)


def commutation_matrix(
    strings: Packable, others: Optional[Packable] = None
) -> np.ndarray:
    """Boolean matrix ``C[i, j] = strings[i] commutes with others[j]``.

    ``others`` defaults to ``strings`` (the symmetric all-pairs scan).  Two
    strings commute iff ``popcount((x_i ∧ z_j) ⊕ (z_i ∧ x_j))`` is even.
    """
    a = _as_packed(strings)
    b = a if others is None else _as_packed(others)
    if a.n_qubits != b.n_qubits:
        raise ValueError("cannot compare Pauli strings on different qubit counts")
    anti = np.bitwise_count(
        (a.x[:, None, :] & b.z[None, :, :]) ^ (a.z[:, None, :] & b.x[None, :, :])
    ).sum(axis=-1, dtype=np.int64)
    return (anti & 1) == 0


def overlap_matrix(
    strings: Packable, others: Optional[Packable] = None
) -> np.ndarray:
    """Pairwise support-overlap sizes ``|supp(i) ∩ supp(j)|`` as an int matrix."""
    a = _as_packed(strings)
    b = a if others is None else _as_packed(others)
    if a.n_qubits != b.n_qubits:
        raise ValueError("cannot compare Pauli strings on different qubit counts")
    return _popcount_pairwise(a.x | a.z, b.x | b.z, np.bitwise_and)


def support_matrix(strings: Packable) -> np.ndarray:
    """Boolean ``(m, n_qubits)`` matrix: string ``i`` is non-identity on ``q``."""
    packed = _as_packed(strings)
    non_identity = packed.x | packed.z
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    bits = (non_identity[:, :, None] >> shifts[None, None, :]) & np.uint64(1)
    flat = bits.reshape(len(packed), packed.n_words * WORD_BITS)
    return flat[:, : packed.n_qubits].astype(bool)


def routed_vertex_cost_vector(
    strings: Sequence[PauliString],
    targets: Sequence[int],
    distance_matrix: np.ndarray,
) -> np.ndarray:
    """Connectivity-aware CNOT cost of each targeted string, vectorized.

    For vertex ``(P, t)`` the cost is ``2 Σ_{q ∈ supp(P), q ≠ t}
    (2 d(q, t) - 1)`` — the steered parity ladder charges at most ``2 d - 1``
    CNOTs per support qubit each way (hops shared between support qubits only
    make this an upper bound).  On an all-to-all topology (``d = 1``
    everywhere) this collapses to the template cost ``2 (w - 1)``, so the
    distance-weighted GTSP degenerates exactly to the paper's formulation.
    """
    strings = list(strings)
    targets_arr = np.asarray(list(targets), dtype=np.int64)
    if len(strings) != targets_arr.shape[0]:
        raise ValueError("one target per string is required")
    if not strings:
        return np.zeros(0, dtype=np.int64)
    distance = np.asarray(distance_matrix, dtype=np.int64)
    support = support_matrix(strings)
    n = support.shape[1]
    if distance.shape[0] < n or distance.shape[1] < n:
        raise ValueError(
            f"distance matrix of shape {distance.shape} cannot cover "
            f"{n}-qubit strings"
        )
    if np.any(distance[:n, :n] < 0):
        raise ValueError("distance matrix has unreachable pairs (-1 entries)")
    d_to_target = distance[:n, targets_arr].T  # (m, n): d(q, t_i)
    per_qubit = np.where(support, 2 * d_to_target - 1, 0)
    rows = np.arange(len(strings))
    per_qubit[rows, targets_arr] = 0  # the target itself carries the Rz
    return 2 * per_qubit.sum(axis=1)


def distance_weighted_cost_matrix(
    strings: Sequence[PauliString],
    targets: Sequence[int],
    distance_matrix: np.ndarray,
) -> np.ndarray:
    """GTSP edge weights steering the advanced sorting by topology distance.

    Entry ``[a, b]`` is the estimated CNOT cost of implementing vertex ``b``
    right after vertex ``a`` on the device: the distance-weighted ladder cost
    of ``b`` (:func:`routed_vertex_cost_vector`) minus the Sec. III-B
    interface savings (:func:`interface_reduction_matrix`).  On all-to-all
    distances this equals ``2 (w_b - 1) - savings[a, b]``, i.e. the paper's
    objective shifted by a per-cluster constant, so the optimal tour is
    unchanged there.
    """
    cost = routed_vertex_cost_vector(strings, targets, distance_matrix)
    savings = interface_reduction_matrix(strings, targets)
    return cost[None, :] - savings


def interface_reduction_matrix(
    strings: Sequence[PauliString], targets: Sequence[int]
) -> np.ndarray:
    """Pairwise interface CNOT savings for targeted strings (Sec. III-B ω-rule).

    Entry ``[a, b]`` is the number of CNOTs saved by implementing the targeted
    exponential ``(strings[b], targets[b])`` immediately after
    ``(strings[a], targets[a])`` — exactly
    :func:`repro.circuits.interface.interface_cnot_reduction` evaluated for
    every ordered pair at once.  Pairs with different targets save zero,
    matching the paper.

    The strings/targets arguments are "vertices" in the GTSP sense: the same
    Pauli string may appear several times with different targets.
    """
    strings = list(strings)
    targets_arr = np.asarray(list(targets), dtype=np.int64)
    if len(strings) != targets_arr.shape[0]:
        raise ValueError("one target per string is required")
    packed = _as_packed(strings)
    m = len(packed)
    if m == 0:
        return np.zeros((0, 0), dtype=np.int64)

    non_identity = packed.x | packed.z
    word_index = targets_arr // WORD_BITS
    bit_index = (targets_arr % WORD_BITS).astype(np.uint64)
    rows = np.arange(m)
    target_word = non_identity[rows, word_index]
    if np.any(((target_word >> bit_index) & np.uint64(1)) == 0):
        bad = int(np.argmax(((target_word >> bit_index) & np.uint64(1)) == 0))
        raise ValueError(
            f"target {int(targets_arr[bad])} not in support of "
            f"{strings[bad].to_label()}"
        )

    # Per-vertex masks with the own target bit cleared.
    cleared = non_identity.copy()
    cleared[rows, word_index] &= ~(np.uint64(1) << bit_index)

    # ω = 1 for every qubit where both strings are non-identity (target excluded).
    both = _popcount_pairwise(cleared, cleared, np.bitwise_and)

    # ... plus 1 more where the collision is matching (equal non-identity
    # labels) *and* the target collision is "good".
    equal = ~((packed.x[:, None, :] ^ packed.x[None, :, :])
              | (packed.z[:, None, :] ^ packed.z[None, :, :]))
    matching = np.bitwise_count(
        cleared[:, None, :] & cleared[None, :, :] & equal
    ).sum(axis=-1, dtype=np.int64)

    # Per-vertex Pauli bits at the vertex's own target qubit.
    x_at = ((packed.x[rows, word_index] >> bit_index) & np.uint64(1)).astype(bool)
    z_at = ((packed.z[rows, word_index] >> bit_index) & np.uint64(1)).astype(bool)
    # Good collisions on the shared target: both carry an X component
    # (X/Y against X/Y), or both are exactly Z.
    is_z = z_at & ~x_at
    good = (x_at[:, None] & x_at[None, :]) | (is_z[:, None] & is_z[None, :])

    saved = both + np.where(good, matching, 0)

    # The saving can never exceed the CNOTs present at the interface.
    weights = np.bitwise_count(non_identity).sum(axis=-1, dtype=np.int64)
    interface_cnots = np.maximum(
        (weights[:, None] - 1) + (weights[None, :] - 1), 0
    )
    saved = np.minimum(saved, interface_cnots)

    # Different targets save nothing.
    same_target = targets_arr[:, None] == targets_arr[None, :]
    return np.where(same_target, saved, 0)
