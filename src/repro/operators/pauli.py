"""Immutable n-qubit Pauli strings over a symplectic (bit-packed) core.

A :class:`PauliString` is a tensor product of single-qubit Pauli matrices
``I, X, Y, Z`` on a fixed number of qubits.  It is the basic object the
paper's circuit synthesis and sorting techniques operate on: each Trotterized
summand of a fermionic excitation term becomes ``exp(-i θ/2 P)`` for a Pauli
string ``P``.

Internally every string is stored in the *symplectic* representation: two
arbitrary-precision integers ``x`` and ``z`` whose bit ``q`` records whether
qubit ``q`` carries an X component (X or Y) respectively a Z component (Z or
Y).  Products, commutation checks and weight/support queries are then whole-
register bit operations instead of per-qubit table lookups, which is what
makes the Γ-search and GTSP cost scans tractable at molecule scale (see
:mod:`repro.operators.symplectic` for the batched numpy counterpart).

Phase convention: a :class:`PauliString` itself is always phaseless — the
represented operator is exactly ``⊗_q σ_q`` with ``σ(x=1, z=1) = Y`` (not
``XZ``).  Operations that can produce phases (:meth:`multiply`, Clifford
conjugation in :mod:`repro.transforms.clifford`) return the phase separately,
so ``P1 · P2 = phase · P3`` with ``phase ∈ {±1, ±i}``.

The public label API is unchanged: labels read qubit 0 first, matrix exports
place qubit 0 as the most significant bit of the computational-basis index,
and equality/hash/ordering coincide with the historical label-tuple
semantics (lexicographic in ``I < X < Y < Z``), so strings remain hashable
dictionary keys inside :class:`~repro.operators.qubit.QubitOperator` and sort
deterministically when building circuits.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np
from scipy import sparse

#: The four single-qubit Pauli labels in canonical order.
PAULI_LABELS = ("I", "X", "Y", "Z")

#: Single-qubit Pauli matrices used when exporting to dense/sparse form.
PAULI_MATRICES = {
    "I": np.array([[1.0, 0.0], [0.0, 1.0]], dtype=complex),
    "X": np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex),
    "Y": np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex),
    "Z": np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex),
}

#: Multiplication table: (left, right) -> (phase, product_label).  Kept for
#: reference/compatibility; :meth:`PauliString.multiply` uses bit arithmetic.
_PAULI_PRODUCTS: Dict[Tuple[str, str], Tuple[complex, str]] = {
    ("I", "I"): (1, "I"), ("I", "X"): (1, "X"), ("I", "Y"): (1, "Y"), ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"), ("X", "X"): (1, "I"), ("X", "Y"): (1j, "Z"), ("X", "Z"): (-1j, "Y"),
    ("Y", "I"): (1, "Y"), ("Y", "X"): (-1j, "Z"), ("Y", "Y"): (1, "I"), ("Y", "Z"): (1j, "X"),
    ("Z", "I"): (1, "Z"), ("Z", "X"): (1j, "Y"), ("Z", "Y"): (-1j, "X"), ("Z", "Z"): (1, "I"),
}

#: label -> (x bit, z bit) in the symplectic convention (Y carries both).
_LABEL_TO_BITS: Dict[str, Tuple[int, int]] = {
    "I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1),
}

#: (x bit, z bit) -> label; index is ``x + 2 z``.
_BITS_TO_LABEL = ("I", "X", "Z", "Y")

#: Powers of i, indexed by the phase exponent mod 4.
_PHASES = (1.0 + 0.0j, 1.0j, -1.0 + 0.0j, -1.0j)


class PauliString:
    """An immutable Pauli string on ``n_qubits`` qubits.

    Parameters
    ----------
    labels:
        Either a string such as ``"IXYZ"`` or a sequence of single-character
        labels.  Qubit 0 corresponds to the first character.
    """

    __slots__ = ("_n", "_x", "_z", "_labels", "_hash")

    def __init__(self, labels: Sequence[str] | str):
        x = 0
        z = 0
        n = 0
        for label in labels:
            try:
                xbit, zbit = _LABEL_TO_BITS[label]
            except (KeyError, TypeError):
                raise ValueError(
                    f"invalid Pauli label {label!r}; expected one of {PAULI_LABELS}"
                ) from None
            x |= xbit << n
            z |= zbit << n
            n += 1
        self._n = n
        self._x = x
        self._z = z
        self._labels: Tuple[str, ...] | None = None
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bitmasks(cls, n_qubits: int, x: int, z: int) -> "PauliString":
        """Build a string directly from packed symplectic bit-masks.

        Bit ``q`` of ``x`` (``z``) marks an X (Z) component on qubit ``q``; a
        qubit with both bits set carries Y.  This is the fast constructor the
        fermion-to-qubit transforms use to emit strings without going through
        labels.
        """
        if n_qubits < 0:
            raise ValueError("n_qubits must be non-negative")
        mask = (1 << n_qubits) - 1
        if (x | z) & ~mask:
            raise ValueError(
                f"bit-masks act outside the {n_qubits}-qubit register"
            )
        return cls._from_masks(n_qubits, x, z)

    @classmethod
    def _from_masks(cls, n_qubits: int, x: int, z: int) -> "PauliString":
        """Unchecked internal constructor (masks must already fit the register)."""
        string = cls.__new__(cls)
        string._n = n_qubits
        string._x = x
        string._z = z
        string._labels = None
        string._hash = None
        return string

    @classmethod
    def identity(cls, n_qubits: int) -> "PauliString":
        """Return the identity string on ``n_qubits`` qubits."""
        return cls._from_masks(n_qubits, 0, 0)

    @classmethod
    def from_dict(cls, n_qubits: int, paulis: Dict[int, str]) -> "PauliString":
        """Build a string from a ``{qubit: label}`` mapping (missing qubits are I)."""
        x = 0
        z = 0
        for qubit, label in paulis.items():
            if not 0 <= qubit < n_qubits:
                raise ValueError(f"qubit index {qubit} out of range for {n_qubits} qubits")
            try:
                xbit, zbit = _LABEL_TO_BITS[label]
            except (KeyError, TypeError):
                raise ValueError(
                    f"invalid Pauli label {label!r}; expected one of {PAULI_LABELS}"
                ) from None
            x |= xbit << qubit
            z |= zbit << qubit
        return cls._from_masks(n_qubits, x, z)

    @classmethod
    def single(cls, n_qubits: int, qubit: int, label: str) -> "PauliString":
        """Return a weight-one string with ``label`` on ``qubit``."""
        return cls.from_dict(n_qubits, {qubit: label})

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_qubits(self) -> int:
        """Number of qubits the string is defined on."""
        return self._n

    @property
    def x_mask(self) -> int:
        """Packed X-component bit-mask (bit ``q`` set iff qubit ``q`` is X or Y)."""
        return self._x

    @property
    def z_mask(self) -> int:
        """Packed Z-component bit-mask (bit ``q`` set iff qubit ``q`` is Z or Y)."""
        return self._z

    @property
    def labels(self) -> Tuple[str, ...]:
        """Tuple of per-qubit labels, qubit 0 first."""
        cached = self._labels
        if cached is None:
            x, z = self._x, self._z
            cached = tuple(
                _BITS_TO_LABEL[((x >> q) & 1) | (((z >> q) & 1) << 1)]
                for q in range(self._n)
            )
            self._labels = cached
        return cached

    def __getitem__(self, qubit: int) -> str:
        if not -self._n <= qubit < self._n:
            raise IndexError("qubit index out of range")
        if qubit < 0:
            qubit += self._n
        return _BITS_TO_LABEL[((self._x >> qubit) & 1) | (((self._z >> qubit) & 1) << 1)]

    def __len__(self) -> int:
        return self._n

    def __iter__(self):
        return iter(self.labels)

    @property
    def weight(self) -> int:
        """Number of non-identity factors (the string's Pauli weight)."""
        return (self._x | self._z).bit_count()

    @property
    def support(self) -> Tuple[int, ...]:
        """Qubits on which the string acts non-trivially, ascending."""
        mask = self._x | self._z
        qubits = []
        while mask:
            low = mask & -mask
            qubits.append(low.bit_length() - 1)
            mask ^= low
        return tuple(qubits)

    @property
    def is_identity(self) -> bool:
        """True if every factor is the identity."""
        return not (self._x | self._z)

    def to_label(self) -> str:
        """Return the string form, e.g. ``"IXYZ"``."""
        return "".join(self.labels)

    # ------------------------------------------------------------------
    # Algebraic operations
    # ------------------------------------------------------------------
    def multiply(self, other: "PauliString") -> Tuple[complex, "PauliString"]:
        """Multiply two strings, returning ``(phase, product)`` with product a PauliString.

        In the symplectic picture the product masks are plain XORs; the phase
        is ``i`` to the power ``|Y1| + |Y2| - |Y3| + 2 |z1 ∧ x2|  (mod 4)``,
        which follows from writing each factor as ``i^{x z} X^x Z^z``.
        """
        if self._n != other._n:
            raise ValueError("cannot multiply Pauli strings on different qubit counts")
        x1, z1 = self._x, self._z
        x2, z2 = other._x, other._z
        x3 = x1 ^ x2
        z3 = z1 ^ z2
        exponent = (
            (x1 & z1).bit_count()
            + (x2 & z2).bit_count()
            - (x3 & z3).bit_count()
            + 2 * (z1 & x2).bit_count()
        )
        return _PHASES[exponent & 3], PauliString._from_masks(self._n, x3, z3)

    def commutes_with(self, other: "PauliString") -> bool:
        """True if the two strings commute as operators.

        Two Pauli strings commute iff their symplectic inner product
        ``x1·z2 + z1·x2`` vanishes mod 2.
        """
        if self._n != other._n:
            raise ValueError("cannot compare Pauli strings on different qubit counts")
        return ((self._x & other._z) ^ (self._z & other._x)).bit_count() % 2 == 0

    def overlap(self, other: "PauliString") -> Tuple[int, ...]:
        """Qubits where both strings act non-trivially."""
        mask = (self._x | self._z) & (other._x | other._z)
        qubits = []
        while mask:
            low = mask & -mask
            qubits.append(low.bit_length() - 1)
            mask ^= low
        return tuple(qubits)

    # ------------------------------------------------------------------
    # Symplectic (binary) representation
    # ------------------------------------------------------------------
    def to_symplectic(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the binary ``(x, z)`` vectors of the string.

        ``x[i] = 1`` if qubit ``i`` carries X or Y; ``z[i] = 1`` if it carries
        Z or Y.  This representation is what the Clifford (CNOT-circuit)
        conjugation in the generalized fermion-to-qubit transform acts on.
        """
        n = self._n
        x = np.fromiter(((self._x >> q) & 1 for q in range(n)), dtype=np.uint8, count=n)
        z = np.fromiter(((self._z >> q) & 1 for q in range(n)), dtype=np.uint8, count=n)
        return x, z

    @classmethod
    def from_symplectic(cls, x: Sequence[int], z: Sequence[int]) -> "PauliString":
        """Build a string from binary ``(x, z)`` vectors (phase ignored)."""
        if len(x) != len(z):
            raise ValueError("x and z vectors must have the same length")
        x_mask = 0
        z_mask = 0
        for qubit, (xi, zi) in enumerate(zip(x, z)):
            x_mask |= (int(xi) & 1) << qubit
            z_mask |= (int(zi) & 1) << qubit
        return cls._from_masks(len(x), x_mask, z_mask)

    def index_masks(self) -> Tuple[int, int]:
        """The ``(x, z)`` masks re-indexed into computational-basis bit order.

        Qubit 0 is the most significant bit of the basis index, so qubit ``q``
        maps to index bit ``n - 1 - q``.  These are the masks the simulator's
        permutation-based Pauli application uses.
        """
        n = self._n
        x_idx = 0
        z_idx = 0
        for q in range(n):
            x_idx |= ((self._x >> q) & 1) << (n - 1 - q)
            z_idx |= ((self._z >> q) & 1) << (n - 1 - q)
        return x_idx, z_idx

    # ------------------------------------------------------------------
    # Matrix export
    # ------------------------------------------------------------------
    def signed_permutation(self) -> Tuple[np.ndarray, np.ndarray]:
        """The string as a signed permutation: ``(rows, values)`` per column.

        A Pauli string acts on computational basis states as
        ``P|b⟩ = i^{|Y|} (-1)^{|z ∧ b|} |b ⊕ x⟩`` (index bit order, qubit 0
        most significant).  The return arrays give, for every basis column
        ``c``, the single non-zero row ``rows[c] = c ⊕ x`` and its value
        ``values[c]``.  This is the one kernel behind :meth:`to_sparse`,
        :meth:`QubitOperator.to_sparse` and the simulator's matrix-free
        :func:`~repro.simulator.statevector.apply_pauli_string`.
        """
        dim = 1 << self._n
        columns = np.arange(dim, dtype=np.int64)
        x_idx, z_idx = self.index_masks()
        rows = columns ^ np.int64(x_idx)
        signs = 1.0 - 2.0 * (
            np.bitwise_count(columns & np.int64(z_idx)).astype(np.int64) & 1
        )
        values = (_PHASES[(self._x & self._z).bit_count() & 3] * signs).astype(complex)
        return rows, values

    def to_sparse(self) -> sparse.csr_matrix:
        """Return the ``2**n x 2**n`` sparse matrix of the string.

        Qubit 0 is the most significant bit of the computational basis index,
        matching the little-endian-on-paper / big-endian-in-binary convention
        used throughout the simulator subpackage.  Built from
        :meth:`signed_permutation` (one entry per column) instead of
        Kronecker products.
        """
        dim = 1 << self._n
        rows, values = self.signed_permutation()
        return sparse.csr_matrix(
            (values, (rows, np.arange(dim, dtype=np.int64))),
            shape=(dim, dim),
            dtype=complex,
        )

    def to_dense(self) -> np.ndarray:
        """Return the dense matrix of the string (small systems only)."""
        return self.to_sparse().toarray()

    # ------------------------------------------------------------------
    # Manipulation helpers
    # ------------------------------------------------------------------
    def with_label(self, qubit: int, label: str) -> "PauliString":
        """Return a copy with the factor on ``qubit`` replaced by ``label``."""
        if not 0 <= qubit < self._n:
            raise IndexError("qubit index out of range")
        try:
            xbit, zbit = _LABEL_TO_BITS[label]
        except (KeyError, TypeError):
            raise ValueError(
                f"invalid Pauli label {label!r}; expected one of {PAULI_LABELS}"
            ) from None
        bit = 1 << qubit
        x = (self._x & ~bit) | (xbit << qubit)
        z = (self._z & ~bit) | (zbit << qubit)
        return PauliString._from_masks(self._n, x, z)

    def restricted_to(self, qubits: Sequence[int]) -> "PauliString":
        """Return the string restricted to the given ordered subset of qubits."""
        x = 0
        z = 0
        for position, qubit in enumerate(qubits):
            if not -self._n <= qubit < self._n:
                raise IndexError("qubit index out of range")
            if qubit < 0:
                qubit += self._n
            x |= ((self._x >> qubit) & 1) << position
            z |= ((self._z >> qubit) & 1) << position
        return PauliString._from_masks(len(qubits), x, z)

    def padded(self, n_qubits: int) -> "PauliString":
        """Return the string extended with identities up to ``n_qubits`` qubits."""
        if n_qubits < self._n:
            raise ValueError("cannot pad to fewer qubits")
        return PauliString._from_masks(n_qubits, self._x, self._z)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return (
            self._n == other._n and self._x == other._x and self._z == other._z
        )

    def __lt__(self, other: "PauliString") -> bool:
        # Lexicographic comparison of the label tuples (qubit 0 first) with
        # I < X < Y < Z, evaluated on the packed masks: locate the lowest
        # differing qubit and compare its 2-bit sort keys.
        common = min(self._n, other._n)
        mask = (1 << common) - 1
        differing = ((self._x ^ other._x) | (self._z ^ other._z)) & mask
        if not differing:
            return self._n < other._n
        qubit = (differing & -differing).bit_length() - 1
        return _sort_key(self._x, self._z, qubit) < _sort_key(other._x, other._z, qubit)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((self._n, self._x, self._z))
            self._hash = cached
        return cached

    def __repr__(self) -> str:
        return f"PauliString('{self.to_label()}')"


def _sort_key(x: int, z: int, qubit: int) -> int:
    """2-bit per-qubit sort key realizing the label order I < X < Y < Z."""
    xbit = (x >> qubit) & 1
    zbit = (z >> qubit) & 1
    return xbit ^ (3 * zbit)
