"""Immutable n-qubit Pauli strings.

A :class:`PauliString` is a tensor product of single-qubit Pauli matrices
``I, X, Y, Z`` on a fixed number of qubits.  It is the basic object the
paper's circuit synthesis and sorting techniques operate on: each Trotterized
summand of a fermionic excitation term becomes ``exp(-i θ/2 P)`` for a Pauli
string ``P``.

Pauli strings are hashable and totally ordered, so they can be used as
dictionary keys inside :class:`~repro.operators.qubit.QubitOperator` and
sorted deterministically when building circuits.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np
from scipy import sparse

#: The four single-qubit Pauli labels in canonical order.
PAULI_LABELS = ("I", "X", "Y", "Z")

#: Single-qubit Pauli matrices used when exporting to dense/sparse form.
PAULI_MATRICES = {
    "I": np.array([[1.0, 0.0], [0.0, 1.0]], dtype=complex),
    "X": np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex),
    "Y": np.array([[0.0, -1.0j], [1.0j, 0.0]], dtype=complex),
    "Z": np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex),
}

#: Multiplication table: (left, right) -> (phase, product_label).
_PAULI_PRODUCTS: Dict[Tuple[str, str], Tuple[complex, str]] = {
    ("I", "I"): (1, "I"), ("I", "X"): (1, "X"), ("I", "Y"): (1, "Y"), ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"), ("X", "X"): (1, "I"), ("X", "Y"): (1j, "Z"), ("X", "Z"): (-1j, "Y"),
    ("Y", "I"): (1, "Y"), ("Y", "X"): (-1j, "Z"), ("Y", "Y"): (1, "I"), ("Y", "Z"): (1j, "X"),
    ("Z", "I"): (1, "Z"), ("Z", "X"): (1j, "Y"), ("Z", "Y"): (-1j, "X"), ("Z", "Z"): (1, "I"),
}


class PauliString:
    """An immutable Pauli string on ``n_qubits`` qubits.

    Parameters
    ----------
    labels:
        Either a string such as ``"IXYZ"`` or a sequence of single-character
        labels.  Qubit 0 corresponds to the first character.
    """

    __slots__ = ("_labels", "_hash")

    def __init__(self, labels: Sequence[str] | str):
        labels = tuple(labels)
        for label in labels:
            if label not in PAULI_LABELS:
                raise ValueError(f"invalid Pauli label {label!r}; expected one of {PAULI_LABELS}")
        self._labels: Tuple[str, ...] = labels
        self._hash = hash(labels)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n_qubits: int) -> "PauliString":
        """Return the identity string on ``n_qubits`` qubits."""
        return cls("I" * n_qubits)

    @classmethod
    def from_dict(cls, n_qubits: int, paulis: Dict[int, str]) -> "PauliString":
        """Build a string from a ``{qubit: label}`` mapping (missing qubits are I)."""
        labels = ["I"] * n_qubits
        for qubit, label in paulis.items():
            if not 0 <= qubit < n_qubits:
                raise ValueError(f"qubit index {qubit} out of range for {n_qubits} qubits")
            labels[qubit] = label
        return cls(labels)

    @classmethod
    def single(cls, n_qubits: int, qubit: int, label: str) -> "PauliString":
        """Return a weight-one string with ``label`` on ``qubit``."""
        return cls.from_dict(n_qubits, {qubit: label})

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_qubits(self) -> int:
        """Number of qubits the string is defined on."""
        return len(self._labels)

    @property
    def labels(self) -> Tuple[str, ...]:
        """Tuple of per-qubit labels, qubit 0 first."""
        return self._labels

    def __getitem__(self, qubit: int) -> str:
        return self._labels[qubit]

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self):
        return iter(self._labels)

    @property
    def weight(self) -> int:
        """Number of non-identity factors (the string's Pauli weight)."""
        return sum(1 for label in self._labels if label != "I")

    @property
    def support(self) -> Tuple[int, ...]:
        """Qubits on which the string acts non-trivially, ascending."""
        return tuple(i for i, label in enumerate(self._labels) if label != "I")

    @property
    def is_identity(self) -> bool:
        """True if every factor is the identity."""
        return self.weight == 0

    def to_label(self) -> str:
        """Return the string form, e.g. ``"IXYZ"``."""
        return "".join(self._labels)

    # ------------------------------------------------------------------
    # Algebraic operations
    # ------------------------------------------------------------------
    def multiply(self, other: "PauliString") -> Tuple[complex, "PauliString"]:
        """Multiply two strings, returning ``(phase, product)`` with product a PauliString."""
        if self.n_qubits != other.n_qubits:
            raise ValueError("cannot multiply Pauli strings on different qubit counts")
        phase: complex = 1.0
        labels = []
        for a, b in zip(self._labels, other._labels):
            factor, product = _PAULI_PRODUCTS[(a, b)]
            phase *= factor
            labels.append(product)
        return phase, PauliString(labels)

    def commutes_with(self, other: "PauliString") -> bool:
        """True if the two strings commute as operators."""
        if self.n_qubits != other.n_qubits:
            raise ValueError("cannot compare Pauli strings on different qubit counts")
        anticommuting = sum(
            1
            for a, b in zip(self._labels, other._labels)
            if a != "I" and b != "I" and a != b
        )
        return anticommuting % 2 == 0

    def overlap(self, other: "PauliString") -> Tuple[int, ...]:
        """Qubits where both strings act non-trivially."""
        return tuple(
            i
            for i, (a, b) in enumerate(zip(self._labels, other._labels))
            if a != "I" and b != "I"
        )

    # ------------------------------------------------------------------
    # Symplectic (binary) representation
    # ------------------------------------------------------------------
    def to_symplectic(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the binary ``(x, z)`` vectors of the string.

        ``x[i] = 1`` if qubit ``i`` carries X or Y; ``z[i] = 1`` if it carries
        Z or Y.  This representation is what the Clifford (CNOT-circuit)
        conjugation in the generalized fermion-to-qubit transform acts on.
        """
        x = np.zeros(self.n_qubits, dtype=np.uint8)
        z = np.zeros(self.n_qubits, dtype=np.uint8)
        for i, label in enumerate(self._labels):
            if label in ("X", "Y"):
                x[i] = 1
            if label in ("Z", "Y"):
                z[i] = 1
        return x, z

    @classmethod
    def from_symplectic(cls, x: Sequence[int], z: Sequence[int]) -> "PauliString":
        """Build a string from binary ``(x, z)`` vectors (phase ignored)."""
        if len(x) != len(z):
            raise ValueError("x and z vectors must have the same length")
        labels = []
        for xi, zi in zip(x, z):
            xi, zi = int(xi) % 2, int(zi) % 2
            if xi and zi:
                labels.append("Y")
            elif xi:
                labels.append("X")
            elif zi:
                labels.append("Z")
            else:
                labels.append("I")
        return cls(labels)

    # ------------------------------------------------------------------
    # Matrix export
    # ------------------------------------------------------------------
    def to_sparse(self) -> sparse.csr_matrix:
        """Return the ``2**n x 2**n`` sparse matrix of the string.

        Qubit 0 is the most significant bit of the computational basis index,
        matching the little-endian-on-paper / big-endian-in-binary convention
        used throughout the simulator subpackage.
        """
        matrix = sparse.identity(1, format="csr", dtype=complex)
        for label in self._labels:
            matrix = sparse.kron(matrix, sparse.csr_matrix(PAULI_MATRICES[label]), format="csr")
        return matrix

    def to_dense(self) -> np.ndarray:
        """Return the dense matrix of the string (small systems only)."""
        return self.to_sparse().toarray()

    # ------------------------------------------------------------------
    # Manipulation helpers
    # ------------------------------------------------------------------
    def with_label(self, qubit: int, label: str) -> "PauliString":
        """Return a copy with the factor on ``qubit`` replaced by ``label``."""
        labels = list(self._labels)
        labels[qubit] = label
        return PauliString(labels)

    def restricted_to(self, qubits: Sequence[int]) -> "PauliString":
        """Return the string restricted to the given ordered subset of qubits."""
        return PauliString([self._labels[q] for q in qubits])

    def padded(self, n_qubits: int) -> "PauliString":
        """Return the string extended with identities up to ``n_qubits`` qubits."""
        if n_qubits < self.n_qubits:
            raise ValueError("cannot pad to fewer qubits")
        return PauliString(self._labels + ("I",) * (n_qubits - self.n_qubits))

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return self._labels == other._labels

    def __lt__(self, other: "PauliString") -> bool:
        return self._labels < other._labels

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"PauliString('{self.to_label()}')"
