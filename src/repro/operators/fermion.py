"""Fermionic ladder-operator algebra.

A :class:`FermionOperator` is a complex linear combination of products of
fermionic creation and annihilation operators acting on spin orbitals labelled
by non-negative integers.  Individual products are represented by a
:class:`FermionTerm`, an immutable tuple of ``(orbital, is_creation)`` pairs.

The implementation mirrors the second-quantization conventions used in the
paper: a double excitation term reads ``a†_p a†_q a_r a_s`` and the
anti-hermitian generator used in UCCSD circuits is ``T - T†``.

Example
-------
>>> op = FermionOperator.creation(2) * FermionOperator.annihilation(0)
>>> op += 0.5 * FermionOperator.identity()
>>> sorted(op.terms.items())
[((), (0.5+0j)), (((2, True), (0, False)), (1+0j))]
"""

from __future__ import annotations

import numbers
from typing import Dict, Iterable, Iterator, Sequence, Tuple

#: A single ladder operator: ``(orbital_index, is_creation)``.
LadderOperator = Tuple[int, bool]

#: A product of ladder operators, applied right-to-left like matrices.
FermionTerm = Tuple[LadderOperator, ...]

#: Coefficients smaller than this magnitude are dropped during simplification.
COEFFICIENT_TOLERANCE = 1e-12


def _validate_term(term: Iterable) -> FermionTerm:
    """Normalize and validate a fermionic term specification.

    Accepts an iterable of ``(orbital, is_creation)`` pairs where the second
    element may be a bool or the integers 0/1 (annihilation/creation).
    """
    normalized = []
    for action in term:
        if not isinstance(action, (tuple, list)) or len(action) != 2:
            raise TypeError(
                f"each ladder operator must be an (orbital, is_creation) pair, got {action!r}"
            )
        orbital, dagger = action
        if not isinstance(orbital, numbers.Integral) or orbital < 0:
            raise ValueError(f"orbital index must be a non-negative integer, got {orbital!r}")
        normalized.append((int(orbital), bool(dagger)))
    return tuple(normalized)


class FermionOperator:
    """A complex linear combination of products of fermionic ladder operators.

    Parameters
    ----------
    term:
        Optional initial term as an iterable of ``(orbital, is_creation)``
        pairs.  ``None`` produces the zero operator; the empty tuple produces
        a multiple of the identity.
    coefficient:
        Complex coefficient of the initial term.
    """

    __slots__ = ("terms",)

    def __init__(self, term: Iterable | None = None, coefficient: complex = 1.0):
        self.terms: Dict[FermionTerm, complex] = {}
        if term is not None:
            coefficient = complex(coefficient)
            if abs(coefficient) > 0.0:
                self.terms[_validate_term(term)] = coefficient

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "FermionOperator":
        """Return the zero operator (no terms)."""
        return cls()

    @classmethod
    def identity(cls, coefficient: complex = 1.0) -> "FermionOperator":
        """Return ``coefficient`` times the identity operator."""
        return cls((), coefficient)

    @classmethod
    def creation(cls, orbital: int, coefficient: complex = 1.0) -> "FermionOperator":
        """Return ``coefficient * a†_orbital``."""
        return cls(((orbital, True),), coefficient)

    @classmethod
    def annihilation(cls, orbital: int, coefficient: complex = 1.0) -> "FermionOperator":
        """Return ``coefficient * a_orbital``."""
        return cls(((orbital, False),), coefficient)

    @classmethod
    def number(cls, orbital: int, coefficient: complex = 1.0) -> "FermionOperator":
        """Return the number operator ``coefficient * a†_orbital a_orbital``."""
        return cls(((orbital, True), (orbital, False)), coefficient)

    @classmethod
    def from_terms(cls, terms: Dict[FermionTerm, complex]) -> "FermionOperator":
        """Build an operator directly from a ``{term: coefficient}`` mapping."""
        op = cls()
        for term, coeff in terms.items():
            coeff = complex(coeff)
            if abs(coeff) > COEFFICIENT_TOLERANCE:
                op.terms[_validate_term(term)] = coeff
        return op

    @classmethod
    def single_excitation(
        cls, p: int, r: int, coefficient: complex = 1.0
    ) -> "FermionOperator":
        """Return the single excitation ``coefficient * a†_p a_r``."""
        return cls(((p, True), (r, False)), coefficient)

    @classmethod
    def double_excitation(
        cls, p: int, q: int, r: int, s: int, coefficient: complex = 1.0
    ) -> "FermionOperator":
        """Return the double excitation ``coefficient * a†_p a†_q a_r a_s``."""
        return cls(((p, True), (q, True), (r, False), (s, False)), coefficient)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_zero(self) -> bool:
        """True if the operator has no terms above the coefficient tolerance."""
        return not any(abs(c) > COEFFICIENT_TOLERANCE for c in self.terms.values())

    @property
    def constant(self) -> complex:
        """Coefficient of the identity term."""
        return self.terms.get((), 0.0 + 0.0j)

    def many_body_order(self) -> int:
        """Largest number of ladder operators appearing in any term."""
        if not self.terms:
            return 0
        return max(len(term) for term in self.terms)

    def max_orbital(self) -> int:
        """Largest orbital index appearing in the operator, or -1 if none."""
        indices = [orb for term in self.terms for orb, _ in term]
        return max(indices) if indices else -1

    def orbitals(self) -> Tuple[int, ...]:
        """Sorted tuple of all orbital indices appearing in the operator."""
        return tuple(sorted({orb for term in self.terms for orb, _ in term}))

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[Tuple[FermionTerm, complex]]:
        return iter(self.terms.items())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _iadd_term(self, term: FermionTerm, coefficient: complex) -> None:
        new = self.terms.get(term, 0.0) + coefficient
        if abs(new) > COEFFICIENT_TOLERANCE:
            self.terms[term] = new
        elif term in self.terms:
            del self.terms[term]

    def __add__(self, other) -> "FermionOperator":
        result = self.copy()
        result += other
        return result

    def __radd__(self, other) -> "FermionOperator":
        return self.__add__(other)

    def __iadd__(self, other) -> "FermionOperator":
        if isinstance(other, FermionOperator):
            for term, coeff in other.terms.items():
                self._iadd_term(term, coeff)
            return self
        if isinstance(other, numbers.Number):
            self._iadd_term((), complex(other))
            return self
        return NotImplemented

    def __sub__(self, other) -> "FermionOperator":
        return self + (-1.0) * other

    def __rsub__(self, other) -> "FermionOperator":
        return (-1.0) * self + other

    def __neg__(self) -> "FermionOperator":
        return (-1.0) * self

    def __mul__(self, other) -> "FermionOperator":
        if isinstance(other, numbers.Number):
            result = FermionOperator()
            other = complex(other)
            if abs(other) > COEFFICIENT_TOLERANCE:
                for term, coeff in self.terms.items():
                    result.terms[term] = coeff * other
            return result
        if isinstance(other, FermionOperator):
            result = FermionOperator()
            for term_a, coeff_a in self.terms.items():
                for term_b, coeff_b in other.terms.items():
                    result._iadd_term(term_a + term_b, coeff_a * coeff_b)
            return result
        return NotImplemented

    def __rmul__(self, other) -> "FermionOperator":
        if isinstance(other, numbers.Number):
            return self.__mul__(other)
        return NotImplemented

    def __truediv__(self, other) -> "FermionOperator":
        if isinstance(other, numbers.Number):
            return self * (1.0 / complex(other))
        return NotImplemented

    def __pow__(self, exponent: int) -> "FermionOperator":
        if not isinstance(exponent, numbers.Integral) or exponent < 0:
            raise ValueError("exponent must be a non-negative integer")
        result = FermionOperator.identity()
        for _ in range(int(exponent)):
            result = result * self
        return result

    def copy(self) -> "FermionOperator":
        new = FermionOperator()
        new.terms = dict(self.terms)
        return new

    def hermitian_conjugate(self) -> "FermionOperator":
        """Return the hermitian conjugate (dagger) of the operator."""
        result = FermionOperator()
        for term, coeff in self.terms.items():
            conj_term = tuple((orb, not dag) for orb, dag in reversed(term))
            result._iadd_term(conj_term, coeff.conjugate())
        return result

    def anti_hermitian_part(self) -> "FermionOperator":
        """Return ``self - self†``, the anti-hermitian generator used in UCC."""
        return self - self.hermitian_conjugate()

    def is_hermitian(self, tolerance: float = 1e-10) -> bool:
        """Check hermiticity by comparing normal-ordered forms."""
        difference = (self - self.hermitian_conjugate()).normal_ordered()
        return all(abs(c) <= tolerance for c in difference.terms.values())

    def compress(self, tolerance: float = COEFFICIENT_TOLERANCE) -> "FermionOperator":
        """Return a copy with coefficients below ``tolerance`` removed."""
        result = FermionOperator()
        for term, coeff in self.terms.items():
            if abs(coeff) > tolerance:
                result.terms[term] = coeff
        return result

    # ------------------------------------------------------------------
    # Normal ordering
    # ------------------------------------------------------------------
    def normal_ordered(self) -> "FermionOperator":
        """Return the normal-ordered form of the operator.

        Creation operators are moved to the left of annihilation operators and
        each group is sorted by descending orbital index, picking up the
        appropriate fermionic signs and contraction terms from the canonical
        anti-commutation relations ``{a_i, a†_j} = δ_ij``.
        """
        result = FermionOperator()
        for term, coeff in self.terms.items():
            result += _normal_ordered_term(term, coeff)
        return result.compress()

    # ------------------------------------------------------------------
    # Display / comparison
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, numbers.Number):
            other = FermionOperator.identity(complex(other))
        if not isinstance(other, FermionOperator):
            return NotImplemented
        difference = (self - other).normal_ordered()
        return all(abs(c) <= 1e-10 for c in difference.terms.values())

    def __hash__(self):
        raise TypeError("FermionOperator is mutable and unhashable")

    def __repr__(self) -> str:
        if not self.terms:
            return "FermionOperator.zero()"
        parts = []
        for term, coeff in sorted(self.terms.items(), key=lambda kv: (len(kv[0]), kv[0])):
            if not term:
                parts.append(f"{coeff}")
                continue
            ops = " ".join(f"a{'^' if dag else ''}{orb}" for orb, dag in term)
            parts.append(f"{coeff} [{ops}]")
        return " + ".join(parts)


def _normal_ordered_term(term: FermionTerm, coefficient: complex) -> FermionOperator:
    """Normal order a single product of ladder operators via bubble passes."""
    result = FermionOperator()
    # Work queue of (term, coefficient) pairs still to be ordered.
    stack = [(list(term), coefficient)]
    while stack:
        ops, coeff = stack.pop()
        swapped = True
        aborted = False
        while swapped:
            swapped = False
            for i in range(len(ops) - 1):
                (orb_a, dag_a), (orb_b, dag_b) = ops[i], ops[i + 1]
                if not dag_a and dag_b:
                    # a_i a†_j = δ_ij - a†_j a_i
                    if orb_a == orb_b:
                        contracted = ops[:i] + ops[i + 2:]
                        stack.append((contracted, coeff))
                    ops[i], ops[i + 1] = ops[i + 1], ops[i]
                    coeff = -coeff
                    swapped = True
                    break
                if dag_a == dag_b and orb_a == orb_b:
                    # a†a† = 0 and aa = 0 for the same orbital.
                    aborted = True
                    break
                if dag_a == dag_b and orb_a < orb_b:
                    # Sort descending within each block (pure anti-commutation).
                    ops[i], ops[i + 1] = ops[i + 1], ops[i]
                    coeff = -coeff
                    swapped = True
                    break
            if aborted:
                break
        if not aborted:
            result._iadd_term(tuple(ops), coeff)
    return result


def normal_ordered(operator: FermionOperator) -> FermionOperator:
    """Module-level convenience wrapper around :meth:`FermionOperator.normal_ordered`."""
    return operator.normal_ordered()


def hermitian_conjugated(operator: FermionOperator) -> FermionOperator:
    """Module-level convenience wrapper around :meth:`FermionOperator.hermitian_conjugate`."""
    return operator.hermitian_conjugate()
