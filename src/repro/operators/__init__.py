"""Operator algebra substrate: fermionic ladder operators and Pauli/qubit operators.

This subpackage provides the second-quantized and qubit-operator data
structures that every other layer of the library builds on:

* :class:`~repro.operators.fermion.FermionOperator` — sums of products of
  fermionic creation/annihilation operators with complex coefficients,
  supporting normal ordering and hermitian conjugation.
* :class:`~repro.operators.pauli.PauliString` — an immutable n-qubit Pauli
  string (tensor product of I/X/Y/Z) stored symplectically (bit-packed X/Z
  masks) with multiplication, commutation and sparse-matrix export.
* :class:`~repro.operators.symplectic.PackedPaulis` — many strings packed
  into ``uint64`` bit-planes for vectorized pairwise commutation/cost scans.
* :class:`~repro.operators.qubit.QubitOperator` — complex linear combinations
  of Pauli strings with full algebra.
"""

from repro.operators.fermion import FermionOperator, FermionTerm
from repro.operators.pauli import PauliString
from repro.operators.qubit import QubitOperator
from repro.operators.symplectic import (
    PackedPaulis,
    commutation_matrix,
    distance_weighted_cost_matrix,
    interface_reduction_matrix,
    overlap_matrix,
    routed_vertex_cost_vector,
    support_matrix,
    weight_vector,
)

__all__ = [
    "FermionOperator",
    "FermionTerm",
    "PackedPaulis",
    "PauliString",
    "QubitOperator",
    "commutation_matrix",
    "distance_weighted_cost_matrix",
    "interface_reduction_matrix",
    "overlap_matrix",
    "routed_vertex_cost_vector",
    "support_matrix",
    "weight_vector",
]
