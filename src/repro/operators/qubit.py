"""Qubit operators: complex linear combinations of Pauli strings.

:class:`QubitOperator` is the qubit-side counterpart of
:class:`~repro.operators.fermion.FermionOperator`.  Fermion-to-qubit
transforms produce ``QubitOperator`` instances, the circuit synthesis layer
consumes their ``(PauliString, coefficient)`` items, and the simulator exports
them to sparse matrices for exact energy evaluation.
"""

from __future__ import annotations

import numbers
from typing import Dict, Iterator, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.operators.pauli import PauliString

#: Coefficients smaller than this magnitude are dropped during simplification.
COEFFICIENT_TOLERANCE = 1e-12


class QubitOperator:
    """A complex linear combination of :class:`PauliString` terms.

    Parameters
    ----------
    n_qubits:
        Number of qubits every contained string is defined on.
    terms:
        Optional initial ``{PauliString: coefficient}`` mapping.
    """

    __slots__ = ("n_qubits", "terms")

    def __init__(self, n_qubits: int, terms: Dict[PauliString, complex] | None = None):
        if n_qubits < 0:
            raise ValueError("n_qubits must be non-negative")
        self.n_qubits = int(n_qubits)
        self.terms: Dict[PauliString, complex] = {}
        if terms:
            for string, coeff in terms.items():
                self._check_string(string)
                coeff = complex(coeff)
                if abs(coeff) > COEFFICIENT_TOLERANCE:
                    self.terms[string] = coeff

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, n_qubits: int) -> "QubitOperator":
        """Return the zero operator on ``n_qubits`` qubits."""
        return cls(n_qubits)

    @classmethod
    def identity(cls, n_qubits: int, coefficient: complex = 1.0) -> "QubitOperator":
        """Return ``coefficient`` times the identity operator."""
        return cls(n_qubits, {PauliString.identity(n_qubits): coefficient})

    @classmethod
    def from_pauli_string(
        cls, string: PauliString, coefficient: complex = 1.0
    ) -> "QubitOperator":
        """Wrap a single Pauli string with a coefficient."""
        return cls(string.n_qubits, {string: coefficient})

    @classmethod
    def from_label(
        cls, label: str, coefficient: complex = 1.0
    ) -> "QubitOperator":
        """Build a single-term operator from a label such as ``"IXYZ"``."""
        string = PauliString(label)
        return cls(string.n_qubits, {string: coefficient})

    # ------------------------------------------------------------------
    # Validation / introspection
    # ------------------------------------------------------------------
    def _check_string(self, string: PauliString) -> None:
        if not isinstance(string, PauliString):
            raise TypeError(f"expected PauliString, got {type(string).__name__}")
        if string.n_qubits != self.n_qubits:
            raise ValueError(
                f"Pauli string on {string.n_qubits} qubits does not match operator on {self.n_qubits}"
            )

    @property
    def is_zero(self) -> bool:
        """True if the operator has no terms above the coefficient tolerance."""
        return not any(abs(c) > COEFFICIENT_TOLERANCE for c in self.terms.values())

    @property
    def constant(self) -> complex:
        """Coefficient of the identity string."""
        return self.terms.get(PauliString.identity(self.n_qubits), 0.0 + 0.0j)

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[Tuple[PauliString, complex]]:
        return iter(self.terms.items())

    def pauli_strings(self) -> Tuple[PauliString, ...]:
        """Deterministically ordered tuple of the contained strings."""
        return tuple(sorted(self.terms.keys()))

    def max_weight(self) -> int:
        """Largest Pauli weight among the contained strings."""
        if not self.terms:
            return 0
        return max(string.weight for string in self.terms)

    def total_cnot_upper_bound(self) -> int:
        """Sum of ``2 (w - 1)`` over non-identity strings.

        This is the CNOT count of exponentiating every string independently
        with the standard staircase template and no inter-string cancellation,
        i.e. the completely unoptimized compilation cost.
        """
        return sum(2 * (s.weight - 1) for s in self.terms if s.weight >= 2)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _iadd_term(self, string: PauliString, coefficient: complex) -> None:
        new = self.terms.get(string, 0.0) + coefficient
        if abs(new) > COEFFICIENT_TOLERANCE:
            self.terms[string] = new
        elif string in self.terms:
            del self.terms[string]

    def copy(self) -> "QubitOperator":
        new = QubitOperator(self.n_qubits)
        new.terms = dict(self.terms)
        return new

    def __add__(self, other) -> "QubitOperator":
        result = self.copy()
        result += other
        return result

    def __radd__(self, other) -> "QubitOperator":
        return self.__add__(other)

    def __iadd__(self, other) -> "QubitOperator":
        if isinstance(other, QubitOperator):
            if other.n_qubits != self.n_qubits:
                raise ValueError("cannot add operators on different qubit counts")
            for string, coeff in other.terms.items():
                self._iadd_term(string, coeff)
            return self
        if isinstance(other, numbers.Number):
            self._iadd_term(PauliString.identity(self.n_qubits), complex(other))
            return self
        return NotImplemented

    def __sub__(self, other) -> "QubitOperator":
        return self + (-1.0) * other

    def __rsub__(self, other) -> "QubitOperator":
        return (-1.0) * self + other

    def __neg__(self) -> "QubitOperator":
        return (-1.0) * self

    def __mul__(self, other) -> "QubitOperator":
        if isinstance(other, numbers.Number):
            other = complex(other)
            result = QubitOperator(self.n_qubits)
            if abs(other) > COEFFICIENT_TOLERANCE:
                for string, coeff in self.terms.items():
                    result.terms[string] = coeff * other
            return result
        if isinstance(other, QubitOperator):
            if other.n_qubits != self.n_qubits:
                raise ValueError("cannot multiply operators on different qubit counts")
            result = QubitOperator(self.n_qubits)
            for string_a, coeff_a in self.terms.items():
                for string_b, coeff_b in other.terms.items():
                    phase, product = string_a.multiply(string_b)
                    result._iadd_term(product, phase * coeff_a * coeff_b)
            return result
        return NotImplemented

    def __rmul__(self, other) -> "QubitOperator":
        if isinstance(other, numbers.Number):
            return self.__mul__(other)
        return NotImplemented

    def __truediv__(self, other) -> "QubitOperator":
        if isinstance(other, numbers.Number):
            return self * (1.0 / complex(other))
        return NotImplemented

    def commutator(self, other: "QubitOperator") -> "QubitOperator":
        """Return ``[self, other] = self other - other self``."""
        return self * other - other * self

    def hermitian_conjugate(self) -> "QubitOperator":
        """Return the hermitian conjugate (Pauli strings are hermitian)."""
        return QubitOperator(
            self.n_qubits, {s: c.conjugate() for s, c in self.terms.items()}
        )

    def is_hermitian(self, tolerance: float = 1e-10) -> bool:
        """True if every coefficient is real to within ``tolerance``."""
        return all(abs(c.imag) <= tolerance for c in self.terms.values())

    def is_anti_hermitian(self, tolerance: float = 1e-10) -> bool:
        """True if every coefficient is purely imaginary to within ``tolerance``."""
        return all(abs(c.real) <= tolerance for c in self.terms.values())

    def compress(self, tolerance: float = COEFFICIENT_TOLERANCE) -> "QubitOperator":
        """Return a copy with coefficients below ``tolerance`` removed."""
        return QubitOperator(
            self.n_qubits, {s: c for s, c in self.terms.items() if abs(c) > tolerance}
        )

    # ------------------------------------------------------------------
    # Matrix export
    # ------------------------------------------------------------------
    def to_sparse(self) -> sparse.csr_matrix:
        """Return the ``2**n x 2**n`` sparse matrix of the operator.

        Every Pauli string is a signed permutation matrix (one entry per
        column), so the export assembles chunks of terms as COO triplets —
        ``row = column ⊕ x``, ``value = coeff · i^{|Y|} · (-1)^{|z ∧ column|}``
        — and lets the CSR conversion sum duplicates, instead of building and
        adding per-string Kronecker products.
        """
        dim = 2 ** self.n_qubits
        matrix = sparse.csr_matrix((dim, dim), dtype=complex)
        if not self.terms:
            return matrix
        columns = np.arange(dim, dtype=np.int64)
        # Chunked accumulation bounds the COO scratch memory on operators
        # with many terms while keeping the number of sparse additions low.
        chunk_rows = []
        chunk_data = []
        chunk_cols = []

        def flush():
            nonlocal matrix, chunk_rows, chunk_data, chunk_cols
            if not chunk_rows:
                return
            chunk = sparse.coo_matrix(
                (
                    np.concatenate(chunk_data),
                    (np.concatenate(chunk_rows), np.concatenate(chunk_cols)),
                ),
                shape=(dim, dim),
            ).tocsr()
            matrix = matrix + chunk
            chunk_rows, chunk_data, chunk_cols = [], [], []

        max_chunk_entries = 1 << 21
        per_term_budget = max(1, max_chunk_entries // dim)
        for string, coeff in self.terms.items():
            rows, values = string.signed_permutation()
            chunk_rows.append(rows)
            chunk_cols.append(columns)
            chunk_data.append(coeff * values)
            if len(chunk_rows) >= per_term_budget:
                flush()
        flush()
        return matrix

    def to_dense(self) -> np.ndarray:
        """Return the dense matrix of the operator (small systems only)."""
        return self.to_sparse().toarray()

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, numbers.Number):
            other = QubitOperator.identity(self.n_qubits, complex(other))
        if not isinstance(other, QubitOperator):
            return NotImplemented
        if other.n_qubits != self.n_qubits:
            return False
        difference = self - other
        return all(abs(c) <= 1e-10 for c in difference.terms.values())

    def __hash__(self):
        raise TypeError("QubitOperator is mutable and unhashable")

    def __repr__(self) -> str:
        if not self.terms:
            return f"QubitOperator.zero({self.n_qubits})"
        parts = [
            f"{coeff} * {string.to_label()}"
            for string, coeff in sorted(self.terms.items(), key=lambda kv: kv[0])
        ]
        return " + ".join(parts)
