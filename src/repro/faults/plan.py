"""Deterministic fault injection: seeded plans over named injection sites.

A :class:`FaultPlan` is a seeded set of :class:`FaultRule` entries, each bound
to one *injection site* — a named point in the codebase that asks the plan
whether to misbehave.  The registered sites are

====================  =========================================================
``disk.read``         :meth:`PersistentCompileCache.get` reading an entry file
``disk.write``        :meth:`PersistentCompileCache.put` writing an entry file
``compute``           the backend compile inside ``repro.api.batch._compile_job``
``pool.worker``       the same entry point, *process-pool children only*
``queue``             :meth:`CompileService.submit` enqueueing a job
``scf``               :func:`repro.chemistry.run_rhf` entering an SCF solve
``stage.gamma``       the pipeline's ``gamma_search`` stage starting its search
``stage.sort``        the pipeline's ``sort`` stage starting the GTSP solve
``checkpoint.write``  :meth:`BatchCheckpoint.record` journaling a finished job
====================  =========================================================

and the available actions are

``error``    raise :class:`InjectedFault` (an ``OSError`` subclass, so the
             disk sites surface exactly like a real I/O failure);
``corrupt``  mangle the bytes flowing through the site (flip the leading byte
             and truncate, so a corrupted cache entry can never deserialize
             into a plausible-but-wrong result);
``delay``    sleep ``delay_s`` seconds before proceeding;
``kill``     terminate the *current process* via ``os._exit`` — suppressed
             everywhere except multiprocessing children, so only pool workers
             ever die (the parent survives to observe the broken pool).

Determinism: every site draws from its own ``random.Random`` stream seeded by
``(plan seed, site name)``, so the draw sequence at one site is an exact
function of the plan seed, independent of how often other sites fire.  With
a single-threaded caller (e.g. a 1-worker
:class:`~repro.service.CompileService`) the per-site schedules replay
exactly — ``benchmarks/bench_chaos.py`` pins its seed on this; only
wall-clock-dependent consumers (the disk breaker's reset window) can shift
which *operation* a given draw lands on.

Activation mirrors the ``repro.obs`` contract: **zero work when disabled**.
Call sites go through the module-level :func:`fire` / :func:`mangle` hooks,
which are a single global-``None`` check when no plan is active (the
disabled-path ceiling is enforced by ``bench_chaos.py``).  Activate a plan
process-wide with :func:`activate`, scoped with the :class:`inject` context
manager, or via the ``REPRO_FAULTS`` environment variable::

    REPRO_FAULTS="seed=7;disk.read=error:0.2;compute=delay:0.3:0.05"

Clauses are ``;``-separated; ``seed=N`` sets the plan seed and every other
clause is ``site=action:probability[:delay_seconds]``.  The env form is read
at import time, so spawned/forked pool workers inherit the plan through
their environment even when they never see the parent's Python state.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "ACTIONS",
    "SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "activate",
    "active_plan",
    "deactivate",
    "fire",
    "inject",
    "mangle",
    "plan_from_env",
]

#: Environment variable holding a fault-plan spec (parsed at import time).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: The registered injection sites (see the module docstring for placement).
SITES = (
    "disk.read",
    "disk.write",
    "compute",
    "pool.worker",
    "queue",
    "scf",
    "stage.gamma",
    "stage.sort",
    "checkpoint.write",
)

#: The actions a rule may take when its probability draw fires.
ACTIONS = ("error", "corrupt", "delay", "kill")

#: Exit code of a ``kill``-action worker death (distinctive in pool logs).
KILL_EXIT_CODE = 87


class InjectedFault(OSError):
    """A fault raised by an active :class:`FaultPlan`.

    Subclasses ``OSError`` so the disk sites surface indistinguishably from
    real I/O failures (full disk, permission flip) to the layers above —
    which is the point: the resilience machinery must not special-case
    injected faults.  Classified as retryable by the default
    :class:`~repro.service.RetryPolicy`.
    """

    def __init__(self, site: str, message: Optional[str] = None):
        super().__init__(message or f"injected fault at site {site!r}")
        self.site = site


@dataclass(frozen=True)
class FaultRule:
    """One (site, action) behavior with a firing probability.

    ``delay_s`` only applies to the ``delay`` action; ``max_fires`` caps how
    many times the rule fires over the plan's lifetime (``None`` = unlimited).
    """

    site: str
    action: str
    probability: float
    delay_s: float = 0.0
    max_fires: Optional[int] = None

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; expected one of {SITES}")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; expected one of {ACTIONS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be None or at least 1")


def _in_pool_child() -> bool:
    """True only inside a multiprocessing child (where ``kill`` may act)."""
    import multiprocessing

    return multiprocessing.parent_process() is not None


class FaultPlan:
    """A seeded, introspectable set of fault rules.

    ``fired`` counts actual fault activations per ``(site, action)``;
    ``evaluations`` counts probability draws per site — both are what tests
    and ``bench_chaos.py`` assert against.  Counters are guarded by a lock
    because the ``compute`` site fires from executor threads.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0):
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        # Per-site streams: the draw sequence at one site is independent of
        # traffic at every other site.
        self._rngs: Dict[str, Random] = {
            site: Random(zlib.crc32(f"{self.seed}:{site}".encode("utf-8")))
            for site in SITES
        }
        self._by_site: Dict[str, List[FaultRule]] = {site: [] for site in SITES}
        for rule in self.rules:
            self._by_site[rule.site].append(rule)
        self._lock = threading.Lock()
        self.fired: Dict[Tuple[str, str], int] = {}
        self.evaluations: Dict[str, int] = {site: 0 for site in SITES}

    # ------------------------------------------------------------------
    # Rule evaluation
    # ------------------------------------------------------------------
    def _should_fire(self, rule: FaultRule) -> bool:
        with self._lock:
            self.evaluations[rule.site] += 1
            draw = self._rngs[rule.site].random()
            if draw >= rule.probability:
                return False
            count_key = (rule.site, rule.action)
            if rule.max_fires is not None and self.fired.get(count_key, 0) >= rule.max_fires:
                return False
            self.fired[count_key] = self.fired.get(count_key, 0) + 1
            return True

    def fire(self, site: str, **context) -> None:
        """Evaluate the non-``corrupt`` rules of ``site``; may raise/sleep/kill."""
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}; expected one of {SITES}")
        for rule in self._by_site[site]:
            if rule.action == "corrupt" or not self._should_fire(rule):
                continue
            if rule.action == "delay":
                time.sleep(rule.delay_s)
            elif rule.action == "kill":
                if _in_pool_child():
                    os._exit(KILL_EXIT_CODE)
                # In the main process a kill would take the service (and the
                # test runner) down with it; record the suppression instead.
                with self._lock:
                    key = (site, "kill-suppressed")
                    self.fired[key] = self.fired.get(key, 0) + 1
            else:  # error
                raise InjectedFault(site)

    def mangle(self, site: str, data: bytes) -> bytes:
        """Evaluate the ``corrupt`` rules of ``site`` against ``data``.

        A fired rule flips the leading byte and truncates to half length, so
        a corrupted pickle always fails to deserialize (never a silent wrong
        payload) while still being a genuine byte-level corruption.
        """
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}; expected one of {SITES}")
        for rule in self._by_site[site]:
            if rule.action != "corrupt" or not self._should_fire(rule):
                continue
            if not data:
                continue
            head = bytes([data[0] ^ 0xFF])
            data = head + data[1 : max(1, len(data) // 2)]
        return data

    def fired_total(self, site: Optional[str] = None) -> int:
        """Total fault activations, optionally restricted to one site."""
        with self._lock:
            return sum(
                count
                for (rule_site, _), count in self.fired.items()
                if site is None or rule_site == site
            )

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, fired={self.fired_total()})"


# ----------------------------------------------------------------------
# Spec parsing (REPRO_FAULTS / inject("..."))
# ----------------------------------------------------------------------
def parse_plan(spec: str, seed: int = 0) -> FaultPlan:
    """Build a plan from a spec string (see the module docstring grammar)."""
    rules: List[FaultRule] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ValueError(f"bad fault clause {clause!r}: expected 'site=action:p' or 'seed=N'")
        left, right = (part.strip() for part in clause.split("=", 1))
        if left == "seed":
            seed = int(right)
            continue
        parts = right.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad fault clause {clause!r}: expected 'site=action:probability[:delay_s]'"
            )
        delay_s = float(parts[2]) if len(parts) == 3 else 0.0
        rules.append(
            FaultRule(site=left, action=parts[0], probability=float(parts[1]), delay_s=delay_s)
        )
    return FaultPlan(rules, seed=seed)


def plan_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[FaultPlan]:
    """The plan described by ``REPRO_FAULTS``, or ``None`` when unset/empty."""
    value = (environ if environ is not None else os.environ).get(FAULTS_ENV_VAR, "")
    if not value.strip():
        return None
    return parse_plan(value)


# ----------------------------------------------------------------------
# Activation: one global slot, checked by the zero-overhead hooks below
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = plan_from_env()


def active_plan() -> Optional[FaultPlan]:
    """The currently active plan, or ``None`` (faults disabled)."""
    return _ACTIVE


def activate(plan: FaultPlan) -> Optional[FaultPlan]:
    """Activate ``plan`` process-wide; returns the previously active plan."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


def deactivate() -> Optional[FaultPlan]:
    """Disable fault injection; returns the previously active plan."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def fire(site: str, **context) -> None:
    """Injection hook: a single ``None`` check when faults are disabled."""
    plan = _ACTIVE
    if plan is not None:
        plan.fire(site, **context)


def mangle(site: str, data: bytes) -> bytes:
    """Byte-mangling hook: the identity when faults are disabled."""
    plan = _ACTIVE
    if plan is None:
        return data
    return plan.mangle(site, data)


class inject:
    """Scope a fault plan: ``with inject("disk.read=error:0.5", seed=7): ...``.

    Accepts a ready :class:`FaultPlan` or a spec string (parsed with
    :func:`parse_plan`).  The previously active plan — usually none — is
    restored on exit, so tests compose without leaking faults.
    """

    def __init__(self, plan: Union[FaultPlan, str], seed: int = 0):
        self.plan = parse_plan(plan, seed=seed) if isinstance(plan, str) else plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        self._previous = activate(self.plan)
        return self.plan

    def __exit__(self, *exc_info) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False
