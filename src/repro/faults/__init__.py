"""Deterministic fault injection for chaos testing the compile service.

A :class:`FaultPlan` binds seeded probabilistic rules (raise, corrupt bytes,
delay, kill a pool worker) to named injection sites (``disk.read``,
``disk.write``, ``compute``, ``pool.worker``, ``queue``).  Call sites reach
the plan through the zero-overhead-when-disabled :func:`fire`/:func:`mangle`
hooks; activate a plan with the :class:`inject` context manager or the
``REPRO_FAULTS`` environment variable.  See :mod:`repro.faults.plan`.

>>> from repro.faults import inject
>>> with inject("disk.read=error:0.2;compute=error:0.2", seed=7) as plan:
...     ...  # service traffic here sees seeded disk/compute faults
>>> plan.fired_total()
"""

from repro.faults.plan import (
    ACTIONS,
    FAULTS_ENV_VAR,
    KILL_EXIT_CODE,
    SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    activate,
    active_plan,
    deactivate,
    fire,
    inject,
    mangle,
    parse_plan,
    plan_from_env,
)

__all__ = [
    "ACTIONS",
    "FAULTS_ENV_VAR",
    "KILL_EXIT_CODE",
    "SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "activate",
    "active_plan",
    "deactivate",
    "fire",
    "inject",
    "mangle",
    "parse_plan",
    "plan_from_env",
]
