"""Linear-encoding (GL(N,2)) fermion-to-qubit transformations.

A *linear encoding* stores the binary occupation vector ``x`` of the fermionic
modes as ``y = Γ x`` on the qubit register, for some invertible binary matrix
``Γ``.  The Jordan-Wigner transform is ``Γ = 1``; the parity and Bravyi-Kitaev
transforms correspond to structured choices of ``Γ``; the paper's *advanced
fermion-to-qubit transformation* searches over block-diagonal ``Γ`` with
simulated annealing.

Operationally, the transform of an operator is obtained by first applying
Jordan-Wigner and then conjugating by the CNOT-only Clifford circuit ``U_Γ``
that implements ``Γ`` on computational basis states.  Because CNOT circuits
map Pauli strings to Pauli strings, the result is again a sum of Pauli
strings with unchanged spectrum.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.operators import FermionOperator, QubitOperator
from repro.transforms.base import FermionQubitTransform
from repro.transforms.binary import (
    CnotPair,
    as_gf2,
    bravyi_kitaev_matrix,
    identity_matrix,
    is_invertible,
    parity_matrix,
    synthesize_cnot_network,
)
from repro.transforms.clifford import conjugate_by_cnot_network
from repro.transforms.jordan_wigner import JordanWignerTransform


class LinearEncodingTransform(FermionQubitTransform):
    """Fermion-to-qubit transformation defined by an invertible GF(2) matrix.

    Parameters
    ----------
    gamma:
        The ``n x n`` invertible binary encoding matrix Γ.  The qubit register
        stores ``Γ x`` where ``x`` is the mode-occupation vector.
    """

    def __init__(self, gamma: np.ndarray):
        gamma = as_gf2(gamma)
        if gamma.shape[0] != gamma.shape[1]:
            raise ValueError("Γ must be square")
        if not is_invertible(gamma):
            raise ValueError("Γ must be invertible over GF(2)")
        super().__init__(gamma.shape[0])
        self.gamma = gamma
        self._cnot_network: List[CnotPair] = synthesize_cnot_network(gamma)
        self._jordan_wigner = JordanWignerTransform(self.n_modes)

    @property
    def cnot_network(self) -> List[CnotPair]:
        """CNOT gates (application order) implementing ``U_Γ`` on basis states."""
        return list(self._cnot_network)

    @property
    def is_identity_encoding(self) -> bool:
        """True if Γ is the identity, i.e. the transform is plain Jordan-Wigner."""
        return bool(np.array_equal(self.gamma, identity_matrix(self.n_modes)))

    def annihilation_operator(self, mode: int) -> QubitOperator:
        jw_image = self._jordan_wigner.annihilation_operator(mode)
        if self.is_identity_encoding:
            return jw_image
        return conjugate_by_cnot_network(jw_image, self._cnot_network)

    def transform(self, operator: FermionOperator) -> QubitOperator:
        # Conjugating the full JW image once is cheaper than conjugating each
        # ladder-operator factor separately.
        jw_image = self._jordan_wigner.transform(operator)
        if self.is_identity_encoding:
            return jw_image
        return conjugate_by_cnot_network(jw_image, self._cnot_network)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_modes={self.n_modes}, cnot_cost={len(self._cnot_network)})"


class BravyiKitaevTransform(LinearEncodingTransform):
    """Bravyi-Kitaev transform realized as a linear encoding.

    The encoding matrix is the Fenwick-tree partial-sum matrix; the resulting
    operators have O(log n) weight, matching the textbook construction up to a
    basis-ordering convention.
    """

    def __init__(self, n_modes: int):
        super().__init__(bravyi_kitaev_matrix(n_modes))


class ParityTransform(LinearEncodingTransform):
    """Parity transform: qubit ``j`` stores the parity of modes ``0..j``."""

    def __init__(self, n_modes: int):
        super().__init__(parity_matrix(n_modes))


def bravyi_kitaev(operator: FermionOperator, n_modes: Optional[int] = None) -> QubitOperator:
    """Transform ``operator`` with the Bravyi-Kitaev linear encoding."""
    if n_modes is None:
        n_modes = operator.max_orbital() + 1
        if n_modes <= 0:
            raise ValueError("cannot infer mode count; pass n_modes")
    return BravyiKitaevTransform(n_modes).transform(operator)


def parity_transform(operator: FermionOperator, n_modes: Optional[int] = None) -> QubitOperator:
    """Transform ``operator`` with the parity linear encoding."""
    if n_modes is None:
        n_modes = operator.max_orbital() + 1
        if n_modes <= 0:
            raise ValueError("cannot infer mode count; pass n_modes")
    return ParityTransform(n_modes).transform(operator)


def generalized_transform(
    operator: FermionOperator, gamma: np.ndarray
) -> QubitOperator:
    """Transform ``operator`` with the generalized (Γ-conjugated JW) encoding."""
    return LinearEncodingTransform(gamma).transform(operator)
