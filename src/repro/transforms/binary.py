"""Binary (GF(2)) linear algebra for linear-reversible Clifford circuits.

The paper's *advanced fermion-to-qubit transformation* searches over
``Γ ∈ GL(N, 2)``, the group of invertible binary matrices.  Every such matrix
corresponds to a CNOT-only (linear reversible) circuit, and conjugating the
Jordan-Wigner image of an operator by that circuit yields a new, equally valid
fermion-to-qubit transformation.  This module provides:

* basic GF(2) matrix operations (multiplication, inversion, rank),
* random sampling of invertible matrices (used by simulated annealing moves),
* CNOT-network synthesis of a matrix by Gaussian elimination and by the
  Patel-Markov-Hayes (PMH) partitioned algorithm [26 in the paper],
* construction of structured encoding matrices (Bravyi-Kitaev / Fenwick-tree,
  parity encoding, block-diagonal assembly).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

#: A CNOT gate acting on wires of a linear reversible circuit.
CnotPair = Tuple[int, int]


def identity_matrix(n: int) -> np.ndarray:
    """Return the ``n x n`` identity over GF(2) as a uint8 array."""
    return np.eye(n, dtype=np.uint8)


def as_gf2(matrix: Sequence[Sequence[int]]) -> np.ndarray:
    """Coerce an array-like to a uint8 matrix with entries reduced mod 2."""
    array = np.asarray(matrix)
    if array.ndim != 2:
        raise ValueError("expected a two-dimensional matrix")
    return (array.astype(np.int64) % 2).astype(np.uint8)


def gf2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two GF(2) matrices."""
    a, b = as_gf2(a), as_gf2(b)
    return (a.astype(np.int64) @ b.astype(np.int64) % 2).astype(np.uint8)


def gf2_matvec(a: np.ndarray, x: Sequence[int]) -> np.ndarray:
    """Apply a GF(2) matrix to a binary vector."""
    a = as_gf2(a)
    x = np.asarray(x, dtype=np.int64) % 2
    return (a.astype(np.int64) @ x % 2).astype(np.uint8)


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a matrix over GF(2), computed by Gaussian elimination."""
    m = as_gf2(matrix).copy()
    rows, cols = m.shape
    rank = 0
    pivot_row = 0
    for col in range(cols):
        pivot = None
        for row in range(pivot_row, rows):
            if m[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        m[[pivot_row, pivot]] = m[[pivot, pivot_row]]
        for row in range(rows):
            if row != pivot_row and m[row, col]:
                m[row] ^= m[pivot_row]
        pivot_row += 1
        rank += 1
        if pivot_row == rows:
            break
    return rank


def is_invertible(matrix: np.ndarray) -> bool:
    """True if the square GF(2) matrix has full rank."""
    matrix = as_gf2(matrix)
    rows, cols = matrix.shape
    return rows == cols and gf2_rank(matrix) == rows


def gf2_inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a GF(2) matrix via Gauss-Jordan elimination.

    Raises
    ------
    ValueError
        If the matrix is singular over GF(2).
    """
    m = as_gf2(matrix).copy()
    rows, cols = m.shape
    if rows != cols:
        raise ValueError("only square matrices can be inverted")
    n = rows
    augmented = np.concatenate([m, identity_matrix(n)], axis=1)
    for col in range(n):
        pivot = None
        for row in range(col, n):
            if augmented[row, col]:
                pivot = row
                break
        if pivot is None:
            raise ValueError("matrix is singular over GF(2)")
        augmented[[col, pivot]] = augmented[[pivot, col]]
        for row in range(n):
            if row != col and augmented[row, col]:
                augmented[row] ^= augmented[col]
    return augmented[:, n:].copy()


def is_upper_triangular(matrix: np.ndarray) -> bool:
    """True if all entries strictly below the diagonal are zero."""
    m = as_gf2(matrix)
    return not np.any(np.tril(m, k=-1))


def random_invertible_matrix(
    n: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Sample a uniformly random invertible GF(2) matrix by rejection."""
    rng = rng or np.random.default_rng()
    while True:
        candidate = rng.integers(0, 2, size=(n, n), dtype=np.uint8)
        if is_invertible(candidate):
            return candidate


def random_upper_triangular_matrix(
    n: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Sample a random invertible upper-triangular GF(2) matrix.

    The baseline of the paper restricts its particle-swarm search to this
    subset of transformations.
    """
    rng = rng or np.random.default_rng()
    matrix = np.triu(rng.integers(0, 2, size=(n, n), dtype=np.uint8), k=1)
    matrix ^= identity_matrix(n)
    return matrix


# ----------------------------------------------------------------------
# Structured encoding matrices
# ----------------------------------------------------------------------
def jordan_wigner_matrix(n: int) -> np.ndarray:
    """Encoding matrix of the Jordan-Wigner transform (the identity)."""
    return identity_matrix(n)


def parity_matrix(n: int) -> np.ndarray:
    """Encoding matrix of the parity transform: qubit j stores sum_{i<=j} x_i."""
    return np.tril(np.ones((n, n), dtype=np.uint8))


def bravyi_kitaev_matrix(n: int) -> np.ndarray:
    """Encoding matrix of the Bravyi-Kitaev (Fenwick tree) transform.

    Built recursively for powers of two and truncated to the requested size,
    following Seeley, Richard and Love.  Row ``j`` indicates which occupation
    numbers qubit ``j`` stores the parity of.
    """
    if n < 1:
        raise ValueError("n must be positive")
    size = 1
    matrix = np.array([[1]], dtype=np.uint8)
    while size < n:
        doubled = np.zeros((2 * size, 2 * size), dtype=np.uint8)
        doubled[:size, :size] = matrix
        doubled[size:, size:] = matrix
        # The last qubit of the doubled block stores the parity of everything.
        doubled[-1, :] = 1
        matrix = doubled
        size *= 2
    return matrix[:n, :n].copy()


def block_diagonal(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Assemble a block-diagonal GF(2) matrix from the given square blocks."""
    blocks = [as_gf2(b) for b in blocks]
    for block in blocks:
        if block.shape[0] != block.shape[1]:
            raise ValueError("all blocks must be square")
    n = sum(block.shape[0] for block in blocks)
    matrix = np.zeros((n, n), dtype=np.uint8)
    offset = 0
    for block in blocks:
        size = block.shape[0]
        matrix[offset:offset + size, offset:offset + size] = block
        offset += size
    return matrix


def embed_block(n: int, indices: Sequence[int], block: np.ndarray) -> np.ndarray:
    """Embed a small invertible block acting on ``indices`` into an ``n x n`` identity.

    This is how the paper's block-diagonal Γ candidates are assembled from the
    excitation-term topology: each connected cluster of orbital indices gets
    its own block while all other modes are left untouched.
    """
    block = as_gf2(block)
    indices = list(indices)
    if block.shape != (len(indices), len(indices)):
        raise ValueError("block shape must match the number of indices")
    matrix = identity_matrix(n)
    for i, row in enumerate(indices):
        for j, col in enumerate(indices):
            matrix[row, col] = block[i, j]
    return matrix


# ----------------------------------------------------------------------
# CNOT-network synthesis
# ----------------------------------------------------------------------
def cnot_network_matrix(n: int, cnots: Sequence[CnotPair]) -> np.ndarray:
    """Return the GF(2) matrix implemented by a sequence of CNOT gates.

    Convention: applying ``CNOT(control, target)`` to a register holding the
    binary vector ``x`` updates ``x[target] ^= x[control]``.  The gates act in
    list order, so the overall matrix is the product of elementary row-update
    matrices with the *last* gate leftmost.
    """
    matrix = identity_matrix(n)
    for control, target in cnots:
        if control == target:
            raise ValueError("CNOT control and target must differ")
        matrix[target] ^= matrix[control]
    return matrix


def synthesize_cnot_network(matrix: np.ndarray) -> List[CnotPair]:
    """Synthesize a CNOT sequence implementing the invertible GF(2) matrix.

    Plain Gauss-Jordan elimination: returns a list of ``(control, target)``
    pairs such that ``cnot_network_matrix(n, result) == matrix``.
    """
    m = as_gf2(matrix).copy()
    n = m.shape[0]
    if not is_invertible(m):
        raise ValueError("matrix is not invertible over GF(2)")
    gates: List[CnotPair] = []
    # Reduce m to the identity by row operations; each row operation
    # row[t] ^= row[c] corresponds to a CNOT(c, t) applied *before* the ones
    # already found (we build the inverse circuit and reverse at the end).
    for col in range(n):
        if not m[col, col]:
            pivot = next(row for row in range(col + 1, n) if m[row, col])
            m[col] ^= m[pivot]
            gates.append((pivot, col))
        for row in range(n):
            if row != col and m[row, col]:
                m[row] ^= m[col]
                gates.append((col, row))
    # The recorded operations transform `matrix` into the identity when applied
    # in order, i.e. G_k ... G_1 * matrix = I, so matrix = G_1^-1 ... G_k^-1.
    # Each CNOT is its own inverse, hence the circuit for `matrix` is the
    # reversed gate list.
    return list(reversed(gates))


def synthesize_cnot_network_pmh(
    matrix: np.ndarray, section_size: Optional[int] = None
) -> List[CnotPair]:
    """Patel-Markov-Hayes synthesis of a linear reversible circuit.

    Asymptotically O(n^2 / log n) CNOT gates; for the modest sizes used in the
    paper it mainly serves as a better-than-Gaussian-elimination baseline.
    Returns gates in application order.
    """
    m = as_gf2(matrix).copy()
    n = m.shape[0]
    if not is_invertible(m):
        raise ValueError("matrix is not invertible over GF(2)")
    if section_size is None:
        section_size = max(1, int(np.log2(max(n, 2))))

    def lower_synth(mat: np.ndarray) -> List[CnotPair]:
        """Reduce ``mat`` to upper triangular, returning the row-ops performed."""
        ops: List[CnotPair] = []
        num_sections = int(np.ceil(mat.shape[0] / section_size))
        for section in range(num_sections):
            start = section * section_size
            stop = min(start + section_size, mat.shape[0])
            # Step A: eliminate duplicate sub-rows within the section.
            patterns: dict = {}
            for row in range(start, mat.shape[0]):
                pattern = tuple(mat[row, start:stop])
                if not any(pattern):
                    continue
                if pattern in patterns:
                    base = patterns[pattern]
                    mat[row] ^= mat[base]
                    ops.append((base, row))
                else:
                    patterns[pattern] = row
            # Step B: Gaussian elimination below the diagonal of the section.
            for col in range(start, stop):
                if not mat[col, col]:
                    pivot = next(
                        (row for row in range(col + 1, mat.shape[0]) if mat[row, col]),
                        None,
                    )
                    if pivot is None:
                        continue
                    mat[col] ^= mat[pivot]
                    ops.append((pivot, col))
                for row in range(col + 1, mat.shape[0]):
                    if mat[row, col]:
                        mat[row] ^= mat[col]
                        ops.append((col, row))
        return ops

    # Lower-triangular part.
    ops_lower = lower_synth(m)
    # Upper-triangular part: synthesize on the transpose.
    m_t = m.T.copy()
    ops_upper_t = lower_synth(m_t)
    # Row operation (c, t) on the transpose is the column operation, i.e. the
    # CNOT with control and target exchanged on the original matrix.
    ops_upper = [(t, c) for c, t in ops_upper_t]

    # We performed  L_ops * matrix * (R_ops)^T = I  in the sense below; combine:
    # following Patel-Markov-Hayes, the circuit is the reversed lower ops after
    # the upper ops reversed.  Verify by construction in tests.
    gates = list(reversed(ops_lower)) + [
        (c, t) for (c, t) in reversed(ops_upper)
    ]
    # Fall back to plain Gaussian elimination if the bookkeeping above failed
    # to reproduce the matrix (guards against edge cases in sectioning).
    if not np.array_equal(cnot_network_matrix(n, gates), as_gf2(matrix)):
        return synthesize_cnot_network(matrix)
    return gates


def cnot_cost(matrix: np.ndarray) -> int:
    """Number of CNOT gates used by the best available synthesis of ``matrix``."""
    gaussian = synthesize_cnot_network(matrix)
    pmh = synthesize_cnot_network_pmh(matrix)
    return min(len(gaussian), len(pmh))
