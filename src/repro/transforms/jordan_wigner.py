"""The Jordan-Wigner fermion-to-qubit transformation.

Convention: mode ``j`` maps to qubit ``j`` and

``a_j = Z_0 ⊗ ... ⊗ Z_{j-1} ⊗ σ⁻_j``   with   ``σ⁻ = (X + iY) / 2``.

The Z string enforces the fermionic anti-commutation relations between
operators on different modes.
"""

from __future__ import annotations

from repro.operators import FermionOperator, PauliString, QubitOperator
from repro.transforms.base import FermionQubitTransform


class JordanWignerTransform(FermionQubitTransform):
    """Jordan-Wigner transformation on ``n_modes`` spin orbitals."""

    def annihilation_operator(self, mode: int) -> QubitOperator:
        if not 0 <= mode < self.n_modes:
            raise ValueError(f"mode {mode} out of range for {self.n_modes} modes")
        n = self.n_qubits
        # Emit the packed symplectic masks directly: the Z chain is a run of
        # low bits, the mode qubit carries X (or Y = X and Z bits together).
        z_chain = (1 << mode) - 1
        mode_bit = 1 << mode
        x_string = PauliString.from_bitmasks(n, mode_bit, z_chain)
        y_string = PauliString.from_bitmasks(n, mode_bit, z_chain | mode_bit)
        return QubitOperator(n, {x_string: 0.5, y_string: 0.5j})


def jordan_wigner(operator: FermionOperator, n_modes: int | None = None) -> QubitOperator:
    """Transform ``operator`` under Jordan-Wigner on ``n_modes`` modes.

    If ``n_modes`` is omitted, the smallest register containing every mode the
    operator touches is used.
    """
    if n_modes is None:
        n_modes = operator.max_orbital() + 1
        if n_modes <= 0:
            raise ValueError("cannot infer the mode count of a constant operator; pass n_modes")
    return JordanWignerTransform(n_modes).transform(operator)
