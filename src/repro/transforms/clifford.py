"""Conjugation of Pauli operators by CNOT (linear reversible) Clifford circuits.

The paper's generalized fermion-to-qubit transformation is defined by a binary
invertible matrix ``Γ``.  The corresponding unitary ``U_Γ`` is a CNOT-only
circuit, a Clifford operation, so conjugation maps every Pauli string to
another Pauli string (with a ±1 sign).  This module implements that
conjugation exactly, both for single CNOT gates and full CNOT networks.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.operators import PauliString, QubitOperator
from repro.transforms.binary import CnotPair

#: Conjugation table for a single CNOT: (control_label, target_label) ->
#: (sign, new_control_label, new_target_label).  Derived from the generator
#: images X_c -> X_c X_t, Z_c -> Z_c, X_t -> X_t, Z_t -> Z_c Z_t.  Kept for
#: reference/tests; the functions below evaluate the equivalent symplectic
#: update (x_t ^= x_c, z_c ^= z_t, sign flip iff x_c z_t (x_t ⊕ z_c ⊕ 1))
#: directly on the packed bit-masks.
_CNOT_CONJUGATION = {
    ("I", "I"): (1, "I", "I"),
    ("I", "X"): (1, "I", "X"),
    ("I", "Y"): (1, "Z", "Y"),
    ("I", "Z"): (1, "Z", "Z"),
    ("X", "I"): (1, "X", "X"),
    ("X", "X"): (1, "X", "I"),
    ("X", "Y"): (1, "Y", "Z"),
    ("X", "Z"): (-1, "Y", "Y"),
    ("Y", "I"): (1, "Y", "X"),
    ("Y", "X"): (1, "Y", "I"),
    ("Y", "Y"): (-1, "X", "Z"),
    ("Y", "Z"): (1, "X", "Y"),
    ("Z", "I"): (1, "Z", "I"),
    ("Z", "X"): (1, "Z", "X"),
    ("Z", "Y"): (1, "I", "Y"),
    ("Z", "Z"): (1, "I", "Z"),
}


def cnot_sign_flip(x_c, z_c, x_t, z_t):
    """Sign-flip indicator of CNOT conjugation on 0/1 component bits.

    Evaluates ``x_c z_t (x_t ⊕ z_c ⊕ 1)`` — the ``(X,Z) → -YY`` /
    ``(Y,Y) → -XZ`` rows of the conjugation table.  Pure bit arithmetic, so
    it works identically on Python ints and on numpy 0/1 arrays; this is the
    single normative implementation shared by :func:`_cnot_step` here and by
    the bit-plane tableau engine in :mod:`repro.verify.tableau`.
    """
    return x_c & z_t & (x_t ^ z_c ^ 1)


def _cnot_step(x: int, z: int, control: int, target: int) -> Tuple[int, int, int]:
    """One CNOT conjugation on packed masks: returns ``(sign, x', z')``.

    Symplectic update ``x_t ^= x_c``, ``z_c ^= z_t``; the sign rule is the
    shared :func:`cnot_sign_flip`.
    """
    if control == target:
        raise ValueError("CNOT control and target must differ")
    x_control = (x >> control) & 1
    z_target = (z >> target) & 1
    sign = 1
    if cnot_sign_flip(x_control, (z >> control) & 1, (x >> target) & 1, z_target):
        sign = -1
    if x_control:
        x ^= 1 << target
    if z_target:
        z ^= 1 << control
    return sign, x, z


def conjugate_pauli_by_cnot(
    string: PauliString, control: int, target: int
) -> Tuple[int, PauliString]:
    """Return ``(sign, CNOT P CNOT)`` for a single CNOT conjugation."""
    sign, x, z = _cnot_step(string.x_mask, string.z_mask, control, target)
    return sign, PauliString.from_bitmasks(string.n_qubits, x, z)


def conjugate_pauli_by_cnot_network(
    string: PauliString, cnots: Sequence[CnotPair]
) -> Tuple[int, PauliString]:
    """Conjugate a Pauli string by a CNOT network ``U = G_k ... G_1``.

    The gate list is given in application (circuit) order, i.e. ``cnots[0]``
    acts first on states.  Conjugation therefore proceeds innermost-first:
    ``U P U† = G_k (... (G_1 P G_1†) ...) G_k†``.  The whole network is
    applied to the packed bit-masks; the string is rebuilt once at the end.
    """
    sign = 1
    x, z = string.x_mask, string.z_mask
    for control, target in cnots:
        step_sign, x, z = _cnot_step(x, z, control, target)
        sign *= step_sign
    return sign, PauliString.from_bitmasks(string.n_qubits, x, z)


def conjugate_by_cnot_network(
    operator: QubitOperator, cnots: Sequence[CnotPair]
) -> QubitOperator:
    """Conjugate every term of a :class:`QubitOperator` by a CNOT network.

    Clifford conjugation permutes the Pauli basis, so distinct input strings
    stay distinct and the result can be assembled in one dictionary pass.
    """
    cnots = list(cnots)
    terms = {}
    for string, coefficient in operator.terms.items():
        sign, new_string = conjugate_pauli_by_cnot_network(string, cnots)
        terms[new_string] = sign * coefficient
    return QubitOperator(operator.n_qubits, terms)
