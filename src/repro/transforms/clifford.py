"""Conjugation of Pauli operators by CNOT (linear reversible) Clifford circuits.

The paper's generalized fermion-to-qubit transformation is defined by a binary
invertible matrix ``Γ``.  The corresponding unitary ``U_Γ`` is a CNOT-only
circuit, a Clifford operation, so conjugation maps every Pauli string to
another Pauli string (with a ±1 sign).  This module implements that
conjugation exactly, both for single CNOT gates and full CNOT networks.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.operators import PauliString, QubitOperator
from repro.transforms.binary import CnotPair

#: Conjugation table for a single CNOT: (control_label, target_label) ->
#: (sign, new_control_label, new_target_label).  Derived from the generator
#: images X_c -> X_c X_t, Z_c -> Z_c, X_t -> X_t, Z_t -> Z_c Z_t.
_CNOT_CONJUGATION = {
    ("I", "I"): (1, "I", "I"),
    ("I", "X"): (1, "I", "X"),
    ("I", "Y"): (1, "Z", "Y"),
    ("I", "Z"): (1, "Z", "Z"),
    ("X", "I"): (1, "X", "X"),
    ("X", "X"): (1, "X", "I"),
    ("X", "Y"): (1, "Y", "Z"),
    ("X", "Z"): (-1, "Y", "Y"),
    ("Y", "I"): (1, "Y", "X"),
    ("Y", "X"): (1, "Y", "I"),
    ("Y", "Y"): (-1, "X", "Z"),
    ("Y", "Z"): (1, "X", "Y"),
    ("Z", "I"): (1, "Z", "I"),
    ("Z", "X"): (1, "Z", "X"),
    ("Z", "Y"): (1, "I", "Y"),
    ("Z", "Z"): (1, "I", "Z"),
}


def conjugate_pauli_by_cnot(
    string: PauliString, control: int, target: int
) -> Tuple[int, PauliString]:
    """Return ``(sign, CNOT P CNOT)`` for a single CNOT conjugation."""
    if control == target:
        raise ValueError("CNOT control and target must differ")
    sign, new_control, new_target = _CNOT_CONJUGATION[(string[control], string[target])]
    new_string = string.with_label(control, new_control).with_label(target, new_target)
    return sign, new_string


def conjugate_pauli_by_cnot_network(
    string: PauliString, cnots: Sequence[CnotPair]
) -> Tuple[int, PauliString]:
    """Conjugate a Pauli string by a CNOT network ``U = G_k ... G_1``.

    The gate list is given in application (circuit) order, i.e. ``cnots[0]``
    acts first on states.  Conjugation therefore proceeds innermost-first:
    ``U P U† = G_k (... (G_1 P G_1†) ...) G_k†``.
    """
    sign = 1
    for control, target in cnots:
        step_sign, string = conjugate_pauli_by_cnot(string, control, target)
        sign *= step_sign
    return sign, string


def conjugate_by_cnot_network(
    operator: QubitOperator, cnots: Sequence[CnotPair]
) -> QubitOperator:
    """Conjugate every term of a :class:`QubitOperator` by a CNOT network."""
    result = QubitOperator.zero(operator.n_qubits)
    for string, coefficient in operator.terms.items():
        sign, new_string = conjugate_pauli_by_cnot_network(string, cnots)
        result += QubitOperator.from_pauli_string(new_string, sign * coefficient)
    return result.compress()
