"""Fermion-to-qubit transformations and GF(2) linear-reversible machinery.

Exports the Jordan-Wigner, Bravyi-Kitaev, parity, ternary-tree and generalized
(Γ-conjugated) transforms along with the binary-matrix utilities they are
built from.
"""

from repro.transforms.base import FermionQubitTransform, relabel_modes
from repro.transforms.binary import (
    block_diagonal,
    bravyi_kitaev_matrix,
    cnot_cost,
    cnot_network_matrix,
    embed_block,
    gf2_inverse,
    gf2_matmul,
    gf2_matvec,
    gf2_rank,
    identity_matrix,
    is_invertible,
    is_upper_triangular,
    jordan_wigner_matrix,
    parity_matrix,
    random_invertible_matrix,
    random_upper_triangular_matrix,
    synthesize_cnot_network,
    synthesize_cnot_network_pmh,
)
from repro.transforms.clifford import (
    cnot_sign_flip,
    conjugate_by_cnot_network,
    conjugate_pauli_by_cnot,
    conjugate_pauli_by_cnot_network,
)
from repro.transforms.jordan_wigner import JordanWignerTransform, jordan_wigner
from repro.transforms.linear_encoding import (
    BravyiKitaevTransform,
    LinearEncodingTransform,
    ParityTransform,
    bravyi_kitaev,
    generalized_transform,
    parity_transform,
)
from repro.transforms.ternary_tree import TernaryTreeTransform

__all__ = [
    "FermionQubitTransform",
    "relabel_modes",
    "JordanWignerTransform",
    "jordan_wigner",
    "LinearEncodingTransform",
    "BravyiKitaevTransform",
    "ParityTransform",
    "TernaryTreeTransform",
    "bravyi_kitaev",
    "parity_transform",
    "generalized_transform",
    "cnot_sign_flip",
    "conjugate_by_cnot_network",
    "conjugate_pauli_by_cnot",
    "conjugate_pauli_by_cnot_network",
    "identity_matrix",
    "jordan_wigner_matrix",
    "parity_matrix",
    "bravyi_kitaev_matrix",
    "block_diagonal",
    "embed_block",
    "gf2_matmul",
    "gf2_matvec",
    "gf2_inverse",
    "gf2_rank",
    "is_invertible",
    "is_upper_triangular",
    "random_invertible_matrix",
    "random_upper_triangular_matrix",
    "synthesize_cnot_network",
    "synthesize_cnot_network_pmh",
    "cnot_network_matrix",
    "cnot_cost",
]
