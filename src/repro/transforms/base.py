"""Base interface for fermion-to-qubit transformations and mode relabeling."""

from __future__ import annotations

import abc
from typing import Dict, Sequence

from repro.operators import FermionOperator, QubitOperator


class FermionQubitTransform(abc.ABC):
    """Abstract fermion-to-qubit transformation on a fixed number of modes.

    A transformation maps a :class:`FermionOperator` on ``n_modes`` spin
    orbitals to a :class:`QubitOperator` on ``n_modes`` qubits while
    preserving the operator algebra (anti-commutation relations) and hence the
    spectrum of any transformed Hamiltonian.
    """

    def __init__(self, n_modes: int):
        if n_modes <= 0:
            raise ValueError("n_modes must be positive")
        self.n_modes = int(n_modes)

    @property
    def n_qubits(self) -> int:
        """Number of qubits in the image (equal to the number of modes)."""
        return self.n_modes

    @abc.abstractmethod
    def annihilation_operator(self, mode: int) -> QubitOperator:
        """Return the qubit image of the annihilation operator ``a_mode``."""

    def creation_operator(self, mode: int) -> QubitOperator:
        """Return the qubit image of the creation operator ``a†_mode``."""
        return self.annihilation_operator(mode).hermitian_conjugate()

    def transform(self, operator: FermionOperator) -> QubitOperator:
        """Map a fermionic operator to its qubit image under this transform."""
        result = QubitOperator.zero(self.n_qubits)
        for term, coefficient in operator.terms.items():
            product = QubitOperator.identity(self.n_qubits, coefficient)
            for mode, is_creation in term:
                if mode >= self.n_modes:
                    raise ValueError(
                        f"operator acts on mode {mode} but transform covers only {self.n_modes} modes"
                    )
                factor = (
                    self.creation_operator(mode)
                    if is_creation
                    else self.annihilation_operator(mode)
                )
                product = product * factor
            result += product
        return result.compress()

    def __call__(self, operator: FermionOperator) -> QubitOperator:
        return self.transform(operator)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_modes={self.n_modes})"


def relabel_modes(
    operator: FermionOperator, permutation: Sequence[int] | Dict[int, int]
) -> FermionOperator:
    """Relabel fermionic modes according to a permutation.

    This implements the baseline's *fermionic level labeling* degree of
    freedom: the embedding of electronic sites onto qubits is itself a choice
    that changes downstream circuit costs.

    Parameters
    ----------
    operator:
        The operator to relabel.
    permutation:
        Either a sequence where ``permutation[old] = new`` or an equivalent
        mapping.  Modes not mentioned in a mapping are left unchanged.
    """
    if isinstance(permutation, dict):
        mapping = dict(permutation)
    else:
        mapping = {old: new for old, new in enumerate(permutation)}
    values = list(mapping.values())
    if len(set(values)) != len(values):
        raise ValueError("permutation must be one-to-one")

    result = FermionOperator()
    for term, coefficient in operator.terms.items():
        new_term = tuple((mapping.get(mode, mode), dagger) for mode, dagger in term)
        result += FermionOperator(new_term, coefficient)
    return result
