"""Ternary-tree fermion-to-qubit transformation (Jiang, Kalev, Mruczkiewicz, Neven).

The ternary-tree mapping assigns one Majorana operator to each root-to-vacancy
path of a ternary tree whose nodes are qubits.  With ``n`` qubits the tree has
``2n + 1`` vacancies, yielding ``2n + 1`` mutually anti-commuting Pauli
strings of weight ``O(log3 n)`` — asymptotically optimal average weight.  The
paper cites this transform as the asymptotic optimum that its Γ-search does
not attempt to beat, so we provide it both for completeness and as an extra
baseline in benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.operators import PauliString, QubitOperator
from repro.transforms.base import FermionQubitTransform

#: Axis labels attached to the three child slots of every tree node.
_CHILD_AXES = ("X", "Y", "Z")


def _build_paths(n_qubits: int) -> List[Dict[int, str]]:
    """Enumerate the root-to-vacancy Pauli paths of the balanced ternary tree.

    Node ``i`` has children ``3i + 1``, ``3i + 2`` and ``3i + 3``; a child
    index ``>= n_qubits`` is a vacancy.  Each vacancy contributes the Pauli
    string accumulated along the path from the root, ending with the axis of
    the vacant slot.  Vacancies are enumerated depth-first so the ordering is
    deterministic.
    """
    paths: List[Dict[int, str]] = []

    def visit(node: int, prefix: Dict[int, str]) -> None:
        for axis_index, axis in enumerate(_CHILD_AXES):
            child = 3 * node + axis_index + 1
            extended = dict(prefix)
            extended[node] = axis
            if child < n_qubits:
                visit(child, extended)
            else:
                paths.append(extended)

    visit(0, {})
    return paths


class TernaryTreeTransform(FermionQubitTransform):
    """Fermion-to-qubit transform based on a balanced ternary tree of qubits."""

    def __init__(self, n_modes: int):
        super().__init__(n_modes)
        paths = _build_paths(self.n_qubits)
        if len(paths) != 2 * self.n_qubits + 1:
            raise RuntimeError(
                f"expected {2 * self.n_qubits + 1} vacancy paths, found {len(paths)}"
            )
        self._majoranas: List[PauliString] = [
            PauliString.from_dict(self.n_qubits, path) for path in paths
        ]

    def majorana_operator(self, index: int) -> PauliString:
        """Pauli string of the Majorana operator ``γ_index`` (0-based)."""
        return self._majoranas[index]

    def annihilation_operator(self, mode: int) -> QubitOperator:
        if not 0 <= mode < self.n_modes:
            raise ValueError(f"mode {mode} out of range for {self.n_modes} modes")
        # a_k = (γ_{2k} + i γ_{2k+1}) / 2
        even = self._majoranas[2 * mode]
        odd = self._majoranas[2 * mode + 1]
        return QubitOperator(
            self.n_qubits, {even: 0.5}
        ) + QubitOperator(self.n_qubits, {odd: 0.5j})
