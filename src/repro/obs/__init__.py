"""repro.obs — unified tracing, metrics and profiling substrate.

One observability layer shared by every subsystem (the compile pipeline, the
chemistry caches, routing, the verify engines and the compile service):

* **Tracing** (:mod:`repro.obs.tracer`) — :class:`Tracer`/:class:`Span` with
  contextvar propagation (spans nest correctly across asyncio workers) and an
  explicit export/adopt protocol that collects spans back from process-pool
  workers.  Disabled (the default) it is a near-zero-overhead no-op; enable
  with ``REPRO_TRACE=1``, :func:`enable_tracing`, or a :func:`tracing` scope.
* **Metrics** (:mod:`repro.obs.metrics`) — :class:`Counter` / :class:`Gauge`
  / bounded :class:`Histogram` in a process-global :class:`MetricsRegistry`;
  always on, cheap enough for hot paths, JSON-serializable snapshots.
  :class:`~repro.service.metrics.ServiceMetrics` is built on these.
* **Exporters** (:mod:`repro.obs.export`) — native JSON trace documents,
  Chrome trace-event JSON (viewable in Perfetto), and a human-readable span
  tree; rendered by ``tools/trace_report.py``.

>>> from repro.obs import tracing, render_span_tree
>>> with tracing() as tracer:
...     result = get_backend("advanced").compile(request)
>>> print(render_span_tree(tracer))
"""

from repro.obs.export import (
    chrome_trace,
    load_trace_document,
    render_span_tree,
    trace_document,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    get_metrics,
)
from repro.obs.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
    tracing,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "chrome_trace",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "get_metrics",
    "get_tracer",
    "load_trace_document",
    "render_span_tree",
    "set_tracer",
    "span",
    "trace_document",
    "tracing",
    "tracing_enabled",
    "validate_chrome_trace",
    "write_trace",
]
