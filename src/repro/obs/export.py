"""Trace exporters: native JSON, Chrome trace-event format, text span tree.

Three views of one :class:`~repro.obs.tracer.Tracer`'s span forest:

* :func:`trace_document` — the repo's native JSON shape (span dicts relative
  to the tracer origin plus a metrics snapshot); written by ``run_table1
  --trace`` and consumed by ``tools/trace_report.py``;
* :func:`chrome_trace` — Chrome trace-event JSON (``ph: "X"`` complete
  events, microsecond timestamps) viewable in Perfetto (https://ui.perfetto.dev)
  or ``chrome://tracing``; overlapping root spans (concurrent service jobs)
  are spread over tracks by a first-fit lane assignment so siblings never
  render entangled;
* :func:`render_span_tree` — indented human-readable tree with durations,
  percentages of the enclosing root, and attributes.

:func:`validate_chrome_trace` is the schema check the obs CI job and the
exporter tests run against emitted traces.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "load_trace_document",
    "render_span_tree",
    "trace_document",
    "validate_chrome_trace",
    "write_trace",
]

#: Format marker of the native trace document.
TRACE_DOCUMENT_VERSION = 1

SpanDict = Dict[str, Any]


def _as_span_dicts(source: Union[Tracer, List[SpanDict]]) -> List[SpanDict]:
    if isinstance(source, Tracer):
        return source.export()
    return list(source)


def trace_document(
    source: Union[Tracer, List[SpanDict]],
    metrics: Optional[MetricsRegistry] = None,
    label: str = "",
) -> Dict[str, Any]:
    """The native JSON trace shape: versioned span forest + metrics snapshot."""
    return {
        "version": TRACE_DOCUMENT_VERSION,
        "label": label,
        "spans": _as_span_dicts(source),
        "metrics": metrics.snapshot() if metrics is not None else {},
    }


def load_trace_document(data: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and return a native trace document (raises ``ValueError``)."""
    if not isinstance(data, dict) or "spans" not in data:
        raise ValueError("not a trace document: missing 'spans'")
    version = data.get("version")
    if version != TRACE_DOCUMENT_VERSION:
        raise ValueError(
            f"unsupported trace document version {version!r}; "
            f"this build reads version {TRACE_DOCUMENT_VERSION}"
        )
    return data


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def _assign_lanes(roots: List[SpanDict]) -> List[int]:
    """First-fit track per root so overlapping roots get separate tids."""
    lane_ends: List[float] = []
    lanes = []
    for root in sorted(roots, key=lambda r: r["start_s"]):
        for lane, end in enumerate(lane_ends):
            if root["start_s"] >= end:
                lane_ends[lane] = root["end_s"]
                lanes.append((id(root), lane))
                break
        else:
            lane_ends.append(root["end_s"])
            lanes.append((id(root), len(lane_ends) - 1))
    by_identity = dict(lanes)
    return [by_identity[id(root)] for root in roots]


def _emit_events(span: SpanDict, tid: int, events: List[Dict[str, Any]]) -> None:
    events.append(
        {
            "name": span["name"],
            "ph": "X",
            "ts": span["start_s"] * 1e6,
            "dur": max(0.0, (span["end_s"] - span["start_s"]) * 1e6),
            "pid": 1,
            "tid": tid,
            "cat": span["name"].split(".", 1)[0],
            "args": dict(span.get("attributes", {})),
        }
    )
    for child in span.get("children", []):
        _emit_events(child, tid, events)


def chrome_trace(
    source: Union[Tracer, List[SpanDict]],
    process_name: str = "repro",
) -> Dict[str, Any]:
    """Chrome trace-event JSON (complete events) for Perfetto/chrome://tracing."""
    roots = _as_span_dicts(source)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for root, tid in zip(roots, _assign_lanes(roots)):
        _emit_events(root, tid, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(data: Dict[str, Any]) -> int:
    """Schema-check a Chrome trace; returns the duration-event count.

    Raises ``ValueError`` on the first malformed event.  Checked: the
    top-level ``traceEvents`` array, per-event required keys, phase codes,
    non-negative microsecond timestamps/durations, and JSON serializability.
    """
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        raise ValueError("chrome trace must be an object with a 'traceEvents' array")
    n_duration_events = 0
    for index, event in enumerate(data["traceEvents"]):
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] is missing {key!r}")
        phase = event["ph"]
        if phase not in ("X", "M", "B", "E", "i"):
            raise ValueError(f"traceEvents[{index}] has unsupported phase {phase!r}")
        if phase == "X":
            if "ts" not in event or "dur" not in event:
                raise ValueError(f"traceEvents[{index}] (complete) needs ts and dur")
            if event["ts"] < 0 or event["dur"] < 0:
                raise ValueError(f"traceEvents[{index}] has negative ts/dur")
            n_duration_events += 1
    json.dumps(data)  # must round-trip
    return n_duration_events


# ----------------------------------------------------------------------
# Text span tree
# ----------------------------------------------------------------------
def _format_attributes(attributes: Dict[str, Any]) -> str:
    if not attributes:
        return ""
    parts = ", ".join(f"{key}={value!r}" for key, value in sorted(attributes.items()))
    return f"  [{parts}]"


def _render(
    span: SpanDict, root_duration: float, depth: int, lines: List[str]
) -> None:
    duration_ms = (span["end_s"] - span["start_s"]) * 1e3
    share = ""
    if root_duration > 0:
        share = f" ({100.0 * (span['end_s'] - span['start_s']) / root_duration:5.1f}%)"
    lines.append(
        f"{'  ' * depth}{span['name']:<{max(1, 40 - 2 * depth)}}"
        f"{duration_ms:10.3f} ms{share}{_format_attributes(span.get('attributes', {}))}"
    )
    for child in span.get("children", []):
        _render(child, root_duration, depth + 1, lines)


def render_span_tree(source: Union[Tracer, List[SpanDict]]) -> str:
    """Indented text rendering of the span forest (durations, %, attributes)."""
    roots = _as_span_dicts(source)
    if not roots:
        return "(no spans collected)"
    lines: List[str] = []
    for root in roots:
        _render(root, root["end_s"] - root["start_s"], 0, lines)
    return "\n".join(lines)


def write_trace(path, document: Dict[str, Any]) -> None:
    """Write any of the JSON trace shapes to ``path`` (pretty-printed)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
