"""Span tracing with contextvar propagation and cross-process collection.

A :class:`Span` is one named, timed interval with attributes and child spans;
a :class:`Tracer` owns a forest of them.  The *current* span lives in a
:mod:`contextvars` variable, so spans nest correctly across ``await`` points —
every :class:`~repro.service.CompileService` worker task sees its own span
stack — and new spans attach to whatever span is active in the calling
context.

The disabled path is a near-no-op: :meth:`Tracer.span` returns a shared
singleton context manager whose ``__enter__`` yields a null span, so
instrumented code pays one method call and no allocation per site
(``benchmarks/bench_obs.py`` enforces the overhead ceiling).

Process-pool workers cannot share the parent's tracer, so the collection
protocol is explicit: the worker runs under a fresh tracer (see
:func:`tracing`), exports its finished spans with :meth:`Tracer.export`
(plain dicts, picklable), and the parent re-attaches them with
:meth:`Tracer.adopt`.  ``perf_counter`` clocks are not comparable across
processes, so exported times are relative to the worker's tracer origin and
:meth:`adopt` rebases them onto a caller-chosen anchor (typically the moment
the parent dispatched the job); durations are always faithful.

Enable globally with ``REPRO_TRACE=1`` in the environment, or
programmatically with :func:`enable_tracing` / the :func:`tracing` scope.
"""

from __future__ import annotations

import os
from contextvars import ContextVar
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "set_tracer",
    "span",
    "tracing",
    "tracing_enabled",
]

#: Environment variable that switches tracing on at import time.
TRACE_ENV_VAR = "REPRO_TRACE"


class Span:
    """One named, timed interval in the trace tree."""

    __slots__ = ("name", "start", "end", "attributes", "children")

    def __init__(self, name: str, start: float, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []

    @property
    def duration_s(self) -> float:
        """Seconds from start to end (to *now* while the span is open)."""
        end = self.end if self.end is not None else perf_counter()
        return end - self.start

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, origin: float = 0.0) -> Dict[str, Any]:
        """JSON/pickle-ready form with times relative to ``origin``."""
        end = self.end if self.end is not None else perf_counter()
        return {
            "name": self.name,
            "start_s": self.start - origin,
            "end_s": end - origin,
            "attributes": dict(self.attributes),
            "children": [child.to_dict(origin) for child in self.children],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any], at: float = 0.0) -> "Span":
        """Rebuild a span tree from :meth:`to_dict`, rebased onto ``at``."""
        rebuilt = Span(data["name"], at + data["start_s"], data.get("attributes"))
        rebuilt.end = at + data["end_s"]
        rebuilt.children = [
            Span.from_dict(child, at) for child in data.get("children", [])
        ]
        return rebuilt

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration_s * 1e3:.3f}ms"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


class _NullSpan:
    """Attribute sink for the disabled path; one shared instance."""

    __slots__ = ()

    name = "null"
    attributes: Dict[str, Any] = {}
    children: List[Span] = []
    start = 0.0
    end = 0.0
    duration_s = 0.0

    def set_attribute(self, key: str, value: Any) -> "_NullSpan":
        return self

    def walk(self):
        return iter(())


#: The span every disabled :meth:`Tracer.span` call yields.
NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Shared no-op context manager: the entire cost of a disabled span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()

#: The active span of the calling context (task/thread-local via contextvars).
_CURRENT: ContextVar[Optional[Span]] = ContextVar("repro_obs_current_span", default=None)


class _SpanContext:
    """Context manager that opens a real span and activates it."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self._span = Span(name, perf_counter(), attributes)

    def __enter__(self) -> Span:
        parent = _CURRENT.get()
        if parent is None:
            self._tracer.roots.append(self._span)
        else:
            parent.children.append(self._span)
        self._token = _CURRENT.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self._span.end = perf_counter()
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        _CURRENT.reset(self._token)
        return False


class Tracer:
    """A forest of spans plus the enabled/disabled switch.

    ``origin`` anchors relative exports: :meth:`export` subtracts it, so a
    worker process's spans are meaningful to the parent after :meth:`adopt`.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self.origin = perf_counter()
        self.roots: List[Span] = []

    def span(self, name: str, **attributes: Any):
        """Context manager opening a child of the current span (or a root)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, attributes)

    def current(self) -> Optional[Span]:
        """The span active in this context, ``None`` outside any span."""
        return _CURRENT.get()

    def clear(self) -> None:
        """Drop collected spans and re-anchor the origin."""
        self.roots = []
        self.origin = perf_counter()

    def all_spans(self) -> List[Span]:
        """Every collected span, depth-first across the root forest."""
        return [span for root in self.roots for span in root.walk()]

    def export(self) -> List[Dict[str, Any]]:
        """The root forest as picklable dicts, times relative to ``origin``."""
        return [root.to_dict(self.origin) for root in self.roots]

    def adopt(self, span_dicts: List[Dict[str, Any]], at: Optional[float] = None) -> List[Span]:
        """Attach exported spans (e.g. from a pool worker) under the current span.

        ``at`` is the absolute ``perf_counter`` anchor the relative times are
        rebased onto; it defaults to the enclosing span's start (or this
        tracer's origin at top level), which places worker spans inside the
        interval that dispatched them.  Returns the adopted root spans.
        """
        if not self.enabled or not span_dicts:
            return []
        parent = _CURRENT.get()
        if at is None:
            at = parent.start if parent is not None else self.origin
        adopted = [Span.from_dict(data, at) for data in span_dicts]
        if parent is None:
            self.roots.extend(adopted)
        else:
            parent.children.extend(adopted)
        return adopted

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self.roots)} roots)"


def _env_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """True when ``REPRO_TRACE`` is set to anything but ''/'0'/'false'/'off'."""
    value = (environ if environ is not None else os.environ).get(TRACE_ENV_VAR, "")
    return value.strip().lower() not in ("", "0", "false", "off", "no")


_TRACER = Tracer(enabled=_env_enabled())


def get_tracer() -> Tracer:
    """The process-global tracer every instrumented call site uses."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer; returns the previous one (for restoration)."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def span(name: str, **attributes: Any):
    """Open a span on the global tracer (module-level convenience)."""
    return _TRACER.span(name, **attributes)


def current_span() -> Optional[Span]:
    """The active span of the calling context on the global tracer."""
    return _TRACER.current()


def tracing_enabled() -> bool:
    return _TRACER.enabled


def enable_tracing(clear: bool = True) -> Tracer:
    """Switch the global tracer on (optionally dropping old spans)."""
    if clear:
        _TRACER.clear()
    _TRACER.enabled = True
    return _TRACER


def disable_tracing() -> Tracer:
    """Switch the global tracer off (collected spans are kept)."""
    _TRACER.enabled = False
    return _TRACER


class tracing:
    """Scope with a fresh global tracer: ``with tracing() as tracer: ...``.

    Swaps in a new :class:`Tracer` (enabled by default) for the duration and
    restores the previous one afterwards — the worker-process entry points
    and the CLIs both collect through this, and tests use it for isolation.

    The current-span stack is also reset for the scope: spans opened under
    the previous tracer must not become parents under this one.  In a forked
    pool worker the inherited stack still points at the parent process's
    copy of the dispatching span — without the reset, the worker's spans
    would attach there and never reach this tracer's exportable roots.
    """

    def __init__(self, enabled: bool = True):
        self._tracer = Tracer(enabled=enabled)
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self._tracer)
        self._token = _CURRENT.set(None)
        return self._tracer

    def __exit__(self, *exc_info) -> bool:
        _CURRENT.reset(self._token)
        set_tracer(self._previous)
        return False
