"""Metrics primitives: counters, gauges, bounded histograms, one registry.

These are the shared observability substrate every subsystem records into —
:class:`~repro.service.metrics.ServiceMetrics` is built on them, the
chemistry caches count hits/misses through them, and the verify engines count
dispatch decisions.  Everything is plain Python, JSON-serializable via
``snapshot()``, and cheap enough to leave permanently enabled (an increment
is one attribute add; nothing allocates per event).

:class:`Histogram` keeps samples **bounded**: below ``max_samples`` every
sample is stored and percentiles are exact; beyond it, reservoir sampling
(Algorithm R, deterministic per-histogram seed) keeps a uniform sample while
``count``/``sum``/``min``/``max`` stay exact, so a long-running
:class:`~repro.service.CompileService` no longer grows memory without bound.

Percentiles use the *nearest-rank* definition: ``rank = ceil(q / 100 * N)``
clamped to ``[1, N]``, i.e. the smallest stored sample at or above the q-th
percentile position.  (The previous implementation used ``round()``, whose
banker's rounding made rank selection inconsistent at ``.5`` boundaries —
e.g. p50 of 2 vs 4 samples; pinned by tests/obs/test_metrics_primitives.py.)
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyHistogram",
    "MetricsRegistry",
    "get_metrics",
]

#: Default sample bound of a :class:`Histogram` (exact percentiles below it).
DEFAULT_MAX_SAMPLES = 4096


class Counter:
    """A monotonically *usable* integer count (manual resets allowed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        self.value += amount
        return self.value

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value with a retained high-water mark."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def reset(self) -> None:
        self.value = 0
        self.peak = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value, "peak": self.peak}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value}, peak={self.peak})"


class Histogram:
    """Bounded sample store with nearest-rank percentile summaries.

    ``len(h)`` is the number of *stored* samples (≤ ``max_samples``);
    ``h.count`` is the number of *recorded* samples.  Below the bound the two
    agree and percentiles are exact; above it percentiles are reservoir
    estimates while ``count``, ``sum``, ``min``, ``max`` (hence the mean)
    remain exact.
    """

    __slots__ = ("name", "max_samples", "samples", "count", "sum", "min", "max", "_rng")

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES):
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        self.name = name
        self.max_samples = max_samples
        self.samples: List[float] = []
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # Deterministic per-name seed so reservoir contents are reproducible.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < self.max_samples:
            self.samples.append(value)
        else:  # Algorithm R: keep each recorded value with probability cap/count
            slot = self._rng.randrange(self.count)
            if slot < self.max_samples:
                self.samples[slot] = value

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile: stored sample at rank ``ceil(q/100·N)``.

        Exact while ``count <= max_samples``; a reservoir estimate beyond.
        Returns ``None`` when empty.
        """
        if not 0 <= q <= 100:
            raise ValueError("percentile must be between 0 and 100")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = min(len(ordered), max(1, math.ceil(q / 100 * len(ordered))))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, Any]:
        """JSON-ready summary in milliseconds (latencies are stored in s)."""
        if not self.count:
            return {"count": 0}
        to_ms = lambda s: round(s * 1e3, 4)  # noqa: E731 - tiny local adapter
        return {
            "count": self.count,
            "mean_ms": to_ms(self.sum / self.count),
            "p50_ms": to_ms(self.percentile(50)),
            "p95_ms": to_ms(self.percentile(95)),
            "p99_ms": to_ms(self.percentile(99)),
            "max_ms": to_ms(self.max),
        }

    def reset(self) -> None:
        self.samples = []
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def snapshot(self) -> Dict[str, Any]:
        return self.summary()

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, stored={len(self.samples)})"


#: Historical name of the latency histogram; same type, same behavior.
LatencyHistogram = Histogram

Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of named metrics with one JSON snapshot.

    Metric objects are stable: fetching an existing name returns the *same*
    object, and :meth:`reset` zeroes values in place, so call sites may cache
    the object at import time and never re-look it up on the hot path.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, kind, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, max_samples))

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def reset(self) -> None:
        """Zero every metric in place (objects and identities survive)."""
        for metric in self._metrics.values():
            metric.reset()

    def snapshot(self) -> Dict[str, Any]:
        """``{name: value}`` for every metric, JSON-serializable."""
        return {name: metric.snapshot() for name, metric in sorted(self._metrics.items())}


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry instrumented call sites use."""
    return _METRICS
