"""Second-quantized molecular Hamiltonians in the molecular-orbital basis.

From a converged restricted Hartree-Fock solution this module builds the
spin-orbital Hamiltonian

``H = E_const + Σ_pq h_pq a†_p a_q + 1/2 Σ_pqrs ⟨pq|rs⟩ a†_p a†_q a_s a_r``

with physicists'-notation two-electron integrals, optionally restricted to an
active space with frozen core orbitals (the constant then absorbs the core
energy and the one-body integrals acquire the usual core-field correction).

Spin orbitals are interleaved: spin orbital ``2 p`` is the α (spin-up)
component of spatial orbital ``p`` and ``2 p + 1`` its β component.  This is
the ordering the paper's hybrid encoding assumes when it compresses the
``(2p, 2p+1)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.chemistry.hartree_fock import ScfNotConvergedError, ScfResult
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.operators import FermionOperator

#: Hamiltonian memo-cache traffic (per-ScfResult caches, global counters).
_HAMILTONIAN_HITS = get_metrics().counter("chemistry.hamiltonian.cache_hits")
_HAMILTONIAN_MISSES = get_metrics().counter("chemistry.hamiltonian.cache_misses")

#: Integrals smaller than this are dropped when building operators.
INTEGRAL_TOLERANCE = 1e-10


@dataclass
class MolecularHamiltonian:
    """Spin-orbital second-quantized Hamiltonian of an (active space of a) molecule."""

    constant: float
    one_body: np.ndarray
    two_body: np.ndarray
    n_electrons: int
    orbital_energies: np.ndarray
    name: str = ""
    hartree_fock_energy: Optional[float] = None

    def __post_init__(self):
        self.one_body = np.asarray(self.one_body, dtype=float)
        self.two_body = np.asarray(self.two_body, dtype=float)
        n = self.one_body.shape[0]
        if self.one_body.shape != (n, n):
            raise ValueError("one_body must be square")
        if self.two_body.shape != (n, n, n, n):
            raise ValueError("two_body must have shape (n, n, n, n)")
        if self.n_electrons < 0 or self.n_electrons > n:
            raise ValueError("invalid electron count for the spin-orbital space")

    @property
    def n_spin_orbitals(self) -> int:
        return self.one_body.shape[0]

    @property
    def n_qubits(self) -> int:
        return self.n_spin_orbitals

    def occupied_spin_orbitals(self) -> Tuple[int, ...]:
        """Spin orbitals occupied in the Hartree-Fock reference determinant."""
        return tuple(range(self.n_electrons))

    def virtual_spin_orbitals(self) -> Tuple[int, ...]:
        """Spin orbitals empty in the Hartree-Fock reference determinant."""
        return tuple(range(self.n_electrons, self.n_spin_orbitals))

    def to_fermion_operator(self) -> FermionOperator:
        """Export the Hamiltonian as a :class:`FermionOperator`."""
        operator = FermionOperator.identity(self.constant)
        n = self.n_spin_orbitals
        for p in range(n):
            for q in range(n):
                coefficient = self.one_body[p, q]
                if abs(coefficient) > INTEGRAL_TOLERANCE:
                    operator += FermionOperator(((p, True), (q, False)), coefficient)
        for p in range(n):
            for q in range(n):
                for r in range(n):
                    for s in range(n):
                        coefficient = 0.5 * self.two_body[p, q, r, s]
                        if abs(coefficient) > INTEGRAL_TOLERANCE:
                            operator += FermionOperator(
                                ((p, True), (q, True), (s, False), (r, False)),
                                coefficient,
                            )
        return operator


def mo_one_body_integrals(scf: ScfResult) -> np.ndarray:
    """One-electron integrals in the molecular-orbital (spatial) basis."""
    coefficients = scf.orbital_coefficients
    return coefficients.T @ scf.core_hamiltonian @ coefficients


def mo_two_body_integrals(scf: ScfResult) -> np.ndarray:
    """Two-electron integrals ``(pq|rs)`` (chemists' notation) in the MO basis."""
    coefficients = scf.orbital_coefficients
    eri = scf.electron_repulsion
    eri = np.einsum("mp,mnls->pnls", coefficients, eri, optimize=True)
    eri = np.einsum("nq,pnls->pqls", coefficients, eri, optimize=True)
    eri = np.einsum("lr,pqls->pqrs", coefficients, eri, optimize=True)
    eri = np.einsum("st,pqrs->pqrt", coefficients, eri, optimize=True)
    return eri


def spin_orbital_integrals(
    one_body_mo: np.ndarray, two_body_mo: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand spatial MO integrals into interleaved spin-orbital integrals.

    Returns ``(h, g)`` with ``h[p, q]`` the one-body matrix and ``g[p, q, r, s]``
    the physicists'-notation ⟨pq|rs⟩ tensor over spin orbitals.
    """
    n_spatial = one_body_mo.shape[0]
    n_spin = 2 * n_spatial
    one_body = np.zeros((n_spin, n_spin))
    two_body = np.zeros((n_spin, n_spin, n_spin, n_spin))

    for p in range(n_spatial):
        for q in range(n_spatial):
            for spin in range(2):
                one_body[2 * p + spin, 2 * q + spin] = one_body_mo[p, q]

    # ⟨pq|rs⟩ = (pr|qs) with spin conservation σ_p = σ_r and σ_q = σ_s.
    for p in range(n_spatial):
        for q in range(n_spatial):
            for r in range(n_spatial):
                for s in range(n_spatial):
                    value = two_body_mo[p, r, q, s]
                    if abs(value) <= INTEGRAL_TOLERANCE:
                        continue
                    for spin_pr in range(2):
                        for spin_qs in range(2):
                            two_body[
                                2 * p + spin_pr, 2 * q + spin_qs,
                                2 * r + spin_pr, 2 * s + spin_qs,
                            ] = value
    return one_body, two_body


def build_molecular_hamiltonian(
    scf: ScfResult,
    n_active_spatial_orbitals: Optional[int] = None,
    n_frozen_spatial_orbitals: int = 0,
    use_cache: bool = True,
    allow_unconverged: bool = False,
) -> MolecularHamiltonian:
    """Build the spin-orbital Hamiltonian, optionally in a frozen-core active space.

    Parameters
    ----------
    scf:
        Converged RHF solution.
    n_active_spatial_orbitals:
        Number of spatial orbitals kept (counted from the first non-frozen
        orbital).  Defaults to all remaining orbitals.
    n_frozen_spatial_orbitals:
        Number of lowest-energy doubly occupied orbitals frozen into the core.
    use_cache:
        Memoize the Hamiltonian on the SCF result, keyed per active-space
        specification, so repeated builds (benchmark sweeps over ansatz
        sizes) skip the MO integral transformation.  Hits return the same
        object — treat it as read-only or pass ``use_cache=False``.
    allow_unconverged:
        An unconverged ``scf`` raises
        :class:`~repro.chemistry.hartree_fock.ScfNotConvergedError` by
        default — MO integrals from an unconverged reference silently bias
        every downstream energy and circuit.  Pass True to build from the
        partial solution anyway (diagnostics, convergence studies).
    """
    if not scf.converged and not allow_unconverged:
        raise ScfNotConvergedError(scf)
    cache_key = (n_active_spatial_orbitals, int(n_frozen_spatial_orbitals))
    if use_cache:
        cached = scf._hamiltonian_cache.get(cache_key)
        if cached is not None:
            _HAMILTONIAN_HITS.inc()
            return cached
    _HAMILTONIAN_MISSES.inc()
    n_spatial = scf.n_orbitals
    n_frozen = int(n_frozen_spatial_orbitals)
    if n_frozen < 0 or n_frozen > scf.n_occupied:
        raise ValueError("cannot freeze more orbitals than are doubly occupied")
    if n_active_spatial_orbitals is None:
        n_active = n_spatial - n_frozen
    else:
        n_active = int(n_active_spatial_orbitals)
    if n_active < 1 or n_frozen + n_active > n_spatial:
        raise ValueError("invalid active-space specification")
    active = list(range(n_frozen, n_frozen + n_active))
    frozen = list(range(n_frozen))

    with get_tracer().span(
        "chemistry.hamiltonian",
        molecule=scf.molecule.name,
        n_active=n_active,
        n_frozen=n_frozen,
    ):
        one_body_mo = mo_one_body_integrals(scf)
        two_body_mo = mo_two_body_integrals(scf)

        # Core (frozen) energy and effective field on the active orbitals.
        core_energy = 0.0
        for i in frozen:
            core_energy += 2.0 * one_body_mo[i, i]
            for j in frozen:
                core_energy += 2.0 * two_body_mo[i, i, j, j] - two_body_mo[i, j, j, i]

        effective_one_body = one_body_mo[np.ix_(active, active)].copy()
        for a_index, p in enumerate(active):
            for b_index, q in enumerate(active):
                correction = 0.0
                for i in frozen:
                    correction += (
                        2.0 * two_body_mo[p, q, i, i] - two_body_mo[p, i, i, q]
                    )
                effective_one_body[a_index, b_index] += correction

        active_two_body = two_body_mo[np.ix_(active, active, active, active)].copy()

        one_body_so, two_body_so = spin_orbital_integrals(
            effective_one_body, active_two_body
        )

        n_active_electrons = scf.molecule.n_electrons - 2 * n_frozen
        orbital_energies = np.repeat(scf.orbital_energies[active], 2)

        result = MolecularHamiltonian(
            constant=float(scf.molecule.nuclear_repulsion + core_energy),
            one_body=one_body_so,
            two_body=two_body_so,
            n_electrons=n_active_electrons,
            orbital_energies=orbital_energies,
            name=scf.molecule.name,
            hartree_fock_energy=scf.energy,
        )
    if use_cache:
        scf._hamiltonian_cache[cache_key] = result
    return result
