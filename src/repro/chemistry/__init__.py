"""Quantum chemistry substrate: STO-3G integrals, Hartree-Fock, Hamiltonians.

This subpackage replaces the PySCF/OpenFermion stack the paper's workflow
normally relies on:

* :mod:`~repro.chemistry.basis` — STO-3G basis data and molecular geometry
  containers;
* :mod:`~repro.chemistry.integrals` — McMurchie-Davidson molecular integrals;
* :mod:`~repro.chemistry.hartree_fock` — restricted Hartree-Fock SCF;
* :mod:`~repro.chemistry.hamiltonian` — spin-orbital second-quantized
  Hamiltonians with frozen-core active spaces;
* :mod:`~repro.chemistry.mp2` — MP2 amplitudes feeding the HMP2 term ordering;
* :mod:`~repro.chemistry.molecules` — the Table-I molecule geometries.
"""

from repro.chemistry.basis import (
    ANGSTROM_TO_BOHR,
    Atom,
    BasisFunction,
    Molecule,
    build_sto3g_basis,
)
from repro.chemistry.hamiltonian import (
    MolecularHamiltonian,
    build_molecular_hamiltonian,
    mo_one_body_integrals,
    mo_two_body_integrals,
    spin_orbital_integrals,
)
from repro.chemistry.hartree_fock import (
    ScfNotConvergedError,
    ScfResult,
    clear_scf_cache,
    molecule_fingerprint,
    run_rhf,
)
from repro.chemistry.integrals import (
    clear_integral_caches,
    set_integral_caching,
    shell_pair_data,
)
from repro.chemistry.molecules import (
    GEOMETRIES,
    ammonia_geometry,
    beh2_geometry,
    h2_geometry,
    hf_geometry,
    lih_geometry,
    make_molecule,
    water_geometry,
)
from repro.chemistry.mp2 import (
    DoubleExcitationAmplitude,
    mp2_amplitudes,
    mp2_energy_correction,
    ranked_double_excitations,
)

__all__ = [
    "ANGSTROM_TO_BOHR",
    "Atom",
    "BasisFunction",
    "Molecule",
    "build_sto3g_basis",
    "ScfNotConvergedError",
    "ScfResult",
    "run_rhf",
    "clear_scf_cache",
    "molecule_fingerprint",
    "clear_integral_caches",
    "set_integral_caching",
    "shell_pair_data",
    "MolecularHamiltonian",
    "build_molecular_hamiltonian",
    "mo_one_body_integrals",
    "mo_two_body_integrals",
    "spin_orbital_integrals",
    "DoubleExcitationAmplitude",
    "mp2_amplitudes",
    "mp2_energy_correction",
    "ranked_double_excitations",
    "GEOMETRIES",
    "make_molecule",
    "h2_geometry",
    "lih_geometry",
    "hf_geometry",
    "beh2_geometry",
    "water_geometry",
    "ammonia_geometry",
]
