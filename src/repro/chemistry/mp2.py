"""Second-order Møller-Plesset (MP2) amplitudes and pair energies.

The paper selects and orders UCCSD excitation terms with the HMP2 procedure of
[9]: second-order perturbation theory both improves the energy estimate and
ranks which excitation term is the next most important one to add to the
ansatz.  The classical ingredient of that ranking is the MP2 amplitude of
every double excitation, computed here from the spin-orbital integrals of a
:class:`~repro.chemistry.hamiltonian.MolecularHamiltonian`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.chemistry.hamiltonian import MolecularHamiltonian

#: Denominators smaller than this are treated as degenerate and skipped.
DEGENERACY_TOLERANCE = 1e-8


@dataclass(frozen=True)
class DoubleExcitationAmplitude:
    """MP2 data for the double excitation ``a†_a a†_b a_j a_i``.

    ``i < j`` are occupied spin orbitals, ``a < b`` are virtual spin orbitals,
    ``amplitude`` is the MP2 t-amplitude and ``energy`` its pair-energy
    contribution (always non-positive).
    """

    occupied: Tuple[int, int]
    virtual: Tuple[int, int]
    amplitude: float
    energy: float

    @property
    def importance(self) -> float:
        """Ranking key used by the HMP2 ordering (magnitude of the energy)."""
        return abs(self.energy)


def antisymmetrized_integral(
    hamiltonian: MolecularHamiltonian, p: int, q: int, r: int, s: int
) -> float:
    """Antisymmetrized two-electron integral ``⟨pq||rs⟩ = ⟨pq|rs⟩ - ⟨pq|sr⟩``."""
    two_body = hamiltonian.two_body
    return float(two_body[p, q, r, s] - two_body[p, q, s, r])


def mp2_amplitudes(hamiltonian: MolecularHamiltonian) -> List[DoubleExcitationAmplitude]:
    """All non-zero MP2 double-excitation amplitudes, unsorted."""
    occupied = hamiltonian.occupied_spin_orbitals()
    virtual = hamiltonian.virtual_spin_orbitals()
    energies = hamiltonian.orbital_energies
    amplitudes: List[DoubleExcitationAmplitude] = []
    for index_i, i in enumerate(occupied):
        for j in occupied[index_i + 1:]:
            for index_a, a in enumerate(virtual):
                for b in virtual[index_a + 1:]:
                    numerator = antisymmetrized_integral(hamiltonian, i, j, a, b)
                    if abs(numerator) < 1e-12:
                        continue
                    denominator = energies[i] + energies[j] - energies[a] - energies[b]
                    if abs(denominator) < DEGENERACY_TOLERANCE:
                        continue
                    amplitude = numerator / denominator
                    energy = numerator * amplitude
                    amplitudes.append(
                        DoubleExcitationAmplitude(
                            occupied=(i, j),
                            virtual=(a, b),
                            amplitude=float(amplitude),
                            energy=float(energy),
                        )
                    )
    return amplitudes


def mp2_energy_correction(hamiltonian: MolecularHamiltonian) -> float:
    """Total MP2 correlation energy (sum of pair energies)."""
    return float(sum(amplitude.energy for amplitude in mp2_amplitudes(hamiltonian)))


def ranked_double_excitations(
    hamiltonian: MolecularHamiltonian,
) -> List[DoubleExcitationAmplitude]:
    """Double excitations sorted by decreasing MP2 importance."""
    return sorted(mp2_amplitudes(hamiltonian), key=lambda amp: -amp.importance)
