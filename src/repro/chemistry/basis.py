"""Minimal STO-3G basis set and Gaussian basis-function containers.

The paper evaluates every molecule in the STO-3G minimal basis.  Because no
quantum-chemistry package is available in this environment, the basis set data
(three-Gaussian expansions of Slater-type orbitals, scaled per element) and
the machinery for contracted Cartesian Gaussians are implemented here from
scratch.  Exponents and contraction coefficients are the standard published
STO-3G values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Conversion factor from Angstrom to Bohr radii.
ANGSTROM_TO_BOHR = 1.8897259886

#: Atomic numbers of the elements supported by the built-in STO-3G data.
ATOMIC_NUMBERS: Dict[str, int] = {
    "H": 1, "He": 2, "Li": 3, "Be": 4, "B": 5, "C": 6, "N": 7, "O": 8, "F": 9, "Ne": 10,
}

#: STO-3G exponents and contraction coefficients per element and shell type.
#: Shell types: "1s" (S), "2sp" (combined S and P shells sharing exponents).
STO3G_DATA: Dict[str, Dict[str, Dict[str, Tuple[float, float, float]]]] = {
    "H": {
        "1s": {
            "exponents": (3.42525091, 0.62391373, 0.16885540),
            "s_coefficients": (0.15432897, 0.53532814, 0.44463454),
        },
    },
    "He": {
        "1s": {
            "exponents": (6.36242139, 1.15892300, 0.31364979),
            "s_coefficients": (0.15432897, 0.53532814, 0.44463454),
        },
    },
    "Li": {
        "1s": {
            "exponents": (16.11957475, 2.93620067, 0.79465050),
            "s_coefficients": (0.15432897, 0.53532814, 0.44463454),
        },
        "2sp": {
            "exponents": (0.63628970, 0.14786010, 0.04808870),
            "s_coefficients": (-0.09996723, 0.39951283, 0.70011547),
            "p_coefficients": (0.15591627, 0.60768372, 0.39195739),
        },
    },
    "Be": {
        "1s": {
            "exponents": (30.16787069, 5.49511818, 1.48719276),
            "s_coefficients": (0.15432897, 0.53532814, 0.44463454),
        },
        "2sp": {
            "exponents": (1.31483311, 0.30553890, 0.09937074),
            "s_coefficients": (-0.09996723, 0.39951283, 0.70011547),
            "p_coefficients": (0.15591627, 0.60768372, 0.39195739),
        },
    },
    "B": {
        "1s": {
            "exponents": (48.79111318, 8.88736882, 2.40526704),
            "s_coefficients": (0.15432897, 0.53532814, 0.44463454),
        },
        "2sp": {
            "exponents": (2.23695611, 0.51982050, 0.16906180),
            "s_coefficients": (-0.09996723, 0.39951283, 0.70011547),
            "p_coefficients": (0.15591627, 0.60768372, 0.39195739),
        },
    },
    "C": {
        "1s": {
            "exponents": (71.61683735, 13.04509632, 3.53051216),
            "s_coefficients": (0.15432897, 0.53532814, 0.44463454),
        },
        "2sp": {
            "exponents": (2.94124940, 0.68348310, 0.22228990),
            "s_coefficients": (-0.09996723, 0.39951283, 0.70011547),
            "p_coefficients": (0.15591627, 0.60768372, 0.39195739),
        },
    },
    "N": {
        "1s": {
            "exponents": (99.10616896, 18.05231239, 4.88566024),
            "s_coefficients": (0.15432897, 0.53532814, 0.44463454),
        },
        "2sp": {
            "exponents": (3.78045590, 0.87849660, 0.28571440),
            "s_coefficients": (-0.09996723, 0.39951283, 0.70011547),
            "p_coefficients": (0.15591627, 0.60768372, 0.39195739),
        },
    },
    "O": {
        "1s": {
            "exponents": (130.70932140, 23.80886050, 6.44360830),
            "s_coefficients": (0.15432897, 0.53532814, 0.44463454),
        },
        "2sp": {
            "exponents": (5.03315130, 1.16959610, 0.38038900),
            "s_coefficients": (-0.09996723, 0.39951283, 0.70011547),
            "p_coefficients": (0.15591627, 0.60768372, 0.39195739),
        },
    },
    "F": {
        "1s": {
            "exponents": (166.67913400, 30.36081200, 8.21682070),
            "s_coefficients": (0.15432897, 0.53532814, 0.44463454),
        },
        "2sp": {
            "exponents": (6.46480320, 1.50228120, 0.48858850),
            "s_coefficients": (-0.09996723, 0.39951283, 0.70011547),
            "p_coefficients": (0.15591627, 0.60768372, 0.39195739),
        },
    },
}


def double_factorial(n: int) -> int:
    """Return ``n!!`` with the convention ``(-1)!! = 1``."""
    if n <= 0:
        return 1
    result = 1
    while n > 1:
        result *= n
        n -= 2
    return result


def primitive_normalization(exponent: float, lmn: Tuple[int, int, int]) -> float:
    """Normalization constant of a primitive Cartesian Gaussian."""
    l, m, n = lmn
    total = l + m + n
    numerator = (2.0 * exponent / math.pi) ** 0.75 * (4.0 * exponent) ** (total / 2.0)
    denominator = math.sqrt(
        double_factorial(2 * l - 1)
        * double_factorial(2 * m - 1)
        * double_factorial(2 * n - 1)
    )
    return numerator / denominator


@dataclass
class BasisFunction:
    """A contracted Cartesian Gaussian basis function.

    Parameters
    ----------
    center:
        Cartesian center in Bohr.
    lmn:
        Cartesian angular momentum exponents ``(l, m, n)``.
    exponents:
        Primitive Gaussian exponents.
    coefficients:
        Contraction coefficients (for normalized primitives).
    """

    center: Tuple[float, float, float]
    lmn: Tuple[int, int, int]
    exponents: Tuple[float, ...]
    coefficients: Tuple[float, ...]
    normalized_coefficients: Tuple[float, ...] = field(init=False)

    def __post_init__(self):
        if len(self.exponents) != len(self.coefficients):
            raise ValueError("exponents and coefficients must have the same length")
        self.center = tuple(float(c) for c in self.center)
        self.lmn = tuple(int(v) for v in self.lmn)
        # Scale contraction coefficients by the primitive norms, then normalize
        # the contracted function to unit self-overlap.
        scaled = [
            coeff * primitive_normalization(exp, self.lmn)
            for exp, coeff in zip(self.exponents, self.coefficients)
        ]
        self.normalized_coefficients = tuple(scaled)
        self_overlap = self._raw_self_overlap()
        norm = 1.0 / math.sqrt(self_overlap)
        self.normalized_coefficients = tuple(c * norm for c in scaled)

    def _raw_self_overlap(self) -> float:
        """Self overlap with the current (primitive-normalized) coefficients."""
        from repro.chemistry.integrals import primitive_overlap

        total = 0.0
        for exp_a, coeff_a in zip(self.exponents, self.normalized_coefficients):
            for exp_b, coeff_b in zip(self.exponents, self.normalized_coefficients):
                total += coeff_a * coeff_b * primitive_overlap(
                    exp_a, self.lmn, self.center, exp_b, self.lmn, self.center
                )
        return total

    @property
    def angular_momentum(self) -> int:
        return sum(self.lmn)


@dataclass
class Atom:
    """An atom: element symbol, atomic number and position in Bohr."""

    symbol: str
    position: Tuple[float, float, float]

    def __post_init__(self):
        if self.symbol not in ATOMIC_NUMBERS:
            raise ValueError(f"unsupported element {self.symbol!r}")
        self.position = tuple(float(x) for x in self.position)

    @property
    def atomic_number(self) -> int:
        return ATOMIC_NUMBERS[self.symbol]


@dataclass
class Molecule:
    """A molecular geometry with an optional charge.

    Positions are stored in Bohr; use :meth:`from_angstrom` for the more
    common Angstrom input.
    """

    atoms: List[Atom]
    charge: int = 0
    name: str = ""

    @classmethod
    def from_angstrom(
        cls,
        geometry: Sequence[Tuple[str, Tuple[float, float, float]]],
        charge: int = 0,
        name: str = "",
    ) -> "Molecule":
        atoms = [
            Atom(symbol, tuple(coordinate * ANGSTROM_TO_BOHR for coordinate in position))
            for symbol, position in geometry
        ]
        return cls(atoms=atoms, charge=charge, name=name)

    @property
    def n_electrons(self) -> int:
        return sum(atom.atomic_number for atom in self.atoms) - self.charge

    @property
    def nuclear_repulsion(self) -> float:
        """Nuclear-nuclear Coulomb repulsion energy in Hartree."""
        energy = 0.0
        for i, atom_a in enumerate(self.atoms):
            for atom_b in self.atoms[i + 1:]:
                distance = math.dist(atom_a.position, atom_b.position)
                energy += atom_a.atomic_number * atom_b.atomic_number / distance
        return energy


#: Cartesian exponents of the three p orbitals, in (px, py, pz) order.
_P_SHELL = ((1, 0, 0), (0, 1, 0), (0, 0, 1))


def build_sto3g_basis(molecule: Molecule) -> List[BasisFunction]:
    """Build the list of STO-3G contracted Gaussians for a molecule.

    Basis functions are ordered atom by atom: 1s, then (2s, 2px, 2py, 2pz) for
    second-row elements.
    """
    basis: List[BasisFunction] = []
    for atom in molecule.atoms:
        element_data = STO3G_DATA.get(atom.symbol)
        if element_data is None:
            raise ValueError(f"no STO-3G data for element {atom.symbol}")
        core = element_data["1s"]
        basis.append(
            BasisFunction(
                center=atom.position,
                lmn=(0, 0, 0),
                exponents=core["exponents"],
                coefficients=core["s_coefficients"],
            )
        )
        if "2sp" in element_data:
            valence = element_data["2sp"]
            basis.append(
                BasisFunction(
                    center=atom.position,
                    lmn=(0, 0, 0),
                    exponents=valence["exponents"],
                    coefficients=valence["s_coefficients"],
                )
            )
            for lmn in _P_SHELL:
                basis.append(
                    BasisFunction(
                        center=atom.position,
                        lmn=lmn,
                        exponents=valence["exponents"],
                        coefficients=valence["p_coefficients"],
                    )
                )
    return basis
