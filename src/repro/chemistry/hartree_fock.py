"""Restricted Hartree-Fock (RHF) self-consistent field solver.

The Hartree-Fock determinant is both the reference state |Ψ0⟩ of the UCCSD
ansatz (the paper follows [8], [9] in using it) and the source of the
molecular-orbital integrals that define the second-quantized Hamiltonian.
The SCF procedure uses symmetric orthogonalization and simple Fock-matrix
damping; DIIS is unnecessary for the small closed-shell molecules of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import eigh

from repro import faults
from repro.chemistry.basis import BasisFunction, Molecule, build_sto3g_basis
from repro.chemistry.integrals import (
    build_core_hamiltonian,
    build_electron_repulsion_tensor,
    build_overlap_matrix,
    integral_cache_stats,
)
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

#: SCF memo-cache traffic, in the global obs registry.
_SCF_HITS = get_metrics().counter("chemistry.scf.cache_hits")
_SCF_MISSES = get_metrics().counter("chemistry.scf.cache_misses")


def molecule_fingerprint(molecule: Molecule) -> Tuple:
    """Hashable identity of a molecule (name + geometry + charge), for memo keys.

    The name participates so a cache hit never hands a caller an
    :class:`ScfResult` labeled with a *different* molecule's name (the name
    propagates into ``MolecularHamiltonian.name`` and report rows).
    """
    return (
        molecule.name,
        molecule.charge,
        tuple((atom.symbol, atom.position) for atom in molecule.atoms),
    )


#: Memoized SCF solutions keyed on (molecule fingerprint, solver settings).
#: Bounded: each entry holds the full n^4 ERI tensor, so geometry sweeps
#: (e.g. dissociation curves) must not accumulate results without limit.
_SCF_CACHE: Dict[Tuple, "ScfResult"] = {}
_SCF_CACHE_MAX_ENTRIES = 32


def clear_scf_cache() -> None:
    """Drop every memoized :func:`run_rhf` solution."""
    _SCF_CACHE.clear()


class ScfNotConvergedError(RuntimeError):
    """The SCF iteration exhausted ``max_iterations`` without converging.

    Carries the best-so-far solution as :attr:`result` so diagnostics (energy
    trajectory, final density) stay reachable; pass
    ``allow_unconverged=True`` to :func:`run_rhf` to receive that partial
    :class:`ScfResult` (``converged=False``) instead of this error.
    """

    def __init__(self, result: "ScfResult"):
        super().__init__(
            f"SCF for {result.molecule.name!r} did not converge in "
            f"{result.n_iterations} iterations (energy {result.energy:.10f} Ha); "
            "raise max_iterations, add damping, or pass allow_unconverged=True "
            "to accept the partial solution"
        )
        self.result = result


@dataclass
class ScfResult:
    """Converged restricted Hartree-Fock solution."""

    molecule: Molecule
    basis: List[BasisFunction]
    energy: float
    orbital_energies: np.ndarray
    orbital_coefficients: np.ndarray
    density_matrix: np.ndarray
    core_hamiltonian: np.ndarray
    overlap: np.ndarray
    electron_repulsion: np.ndarray
    n_iterations: int
    converged: bool
    #: Per-result memo used by ``build_molecular_hamiltonian`` (keyed on the
    #: active-space specification); not part of the solution itself.
    _hamiltonian_cache: Dict[Tuple, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def n_orbitals(self) -> int:
        """Number of spatial molecular orbitals."""
        return self.orbital_coefficients.shape[1]

    @property
    def n_occupied(self) -> int:
        """Number of doubly occupied spatial orbitals."""
        return self.molecule.n_electrons // 2

    @property
    def electronic_energy(self) -> float:
        """HF energy without the nuclear repulsion constant."""
        return self.energy - self.molecule.nuclear_repulsion


def _build_fock_matrix(
    core: np.ndarray, density: np.ndarray, eri: np.ndarray
) -> np.ndarray:
    """Fock matrix F = H_core + J - K/2 for a closed-shell density."""
    coulomb = np.einsum("pqrs,rs->pq", eri, density)
    exchange = np.einsum("prqs,rs->pq", eri, density)
    return core + coulomb - 0.5 * exchange


def run_rhf(
    molecule: Molecule,
    basis: Optional[Sequence[BasisFunction]] = None,
    max_iterations: int = 100,
    convergence: float = 1e-8,
    damping: float = 0.0,
    use_cache: bool = True,
    allow_unconverged: bool = False,
) -> ScfResult:
    """Solve the restricted Hartree-Fock equations for a closed-shell molecule.

    Parameters
    ----------
    molecule:
        The molecule; must have an even number of electrons.
    basis:
        Basis functions; defaults to STO-3G.
    max_iterations:
        SCF iteration cap.
    convergence:
        Convergence threshold on both the energy change and the density change.
    damping:
        Optional linear mixing of consecutive density matrices in [0, 1).
    use_cache:
        Memoize the solution per ``(molecule geometry/charge, solver
        settings)`` so benchmark sweeps over ansatz sizes do not re-run SCF.
        Cache hits return the *same* :class:`ScfResult` object — treat it as
        read-only, or pass ``use_cache=False`` (or call
        :func:`clear_scf_cache`) for a fresh solve.  Only the default STO-3G
        basis path is cached; an explicit ``basis`` always recomputes.
    allow_unconverged:
        By default an unconverged SCF raises :class:`ScfNotConvergedError` —
        a silently unconverged reference poisons every downstream energy.
        Pass True to receive the partial best-so-far :class:`ScfResult`
        (``converged=False``) instead, e.g. to inspect the trajectory or seed
        a retry with damping.

    Raises
    ------
    ScfNotConvergedError
        When the iteration cap is exhausted before convergence and
        ``allow_unconverged`` is False.  The partial solution is attached as
        ``.result``.
    """
    if molecule.n_electrons % 2 != 0:
        raise ValueError("restricted HF requires an even number of electrons")
    if not 0.0 <= damping < 1.0:
        raise ValueError("damping must lie in [0, 1)")
    faults.fire("scf", molecule=molecule.name)
    cache_key = None
    if use_cache and basis is None:
        cache_key = (
            molecule_fingerprint(molecule), max_iterations, convergence, damping
        )
        cached = _SCF_CACHE.get(cache_key)
        if cached is not None:
            _SCF_HITS.inc()
            if not cached.converged and not allow_unconverged:
                raise ScfNotConvergedError(cached)
            return cached
    _SCF_MISSES.inc()
    integrals_before = integral_cache_stats()
    with get_tracer().span("chemistry.scf", molecule=molecule.name) as scf_span:
        result = _solve_rhf(molecule, basis, max_iterations, convergence, damping)
        scf_span.set_attribute("n_iterations", result.n_iterations)
        scf_span.set_attribute("converged", result.converged)
        integrals_after = integral_cache_stats()
        for key in ("boys", "hermite_expansion", "hermite_coulomb", "shell_pair"):
            for event in ("hits", "misses"):
                name = f"{key}.{event}"
                delta = integrals_after[name] - integrals_before[name]
                if delta:
                    scf_span.set_attribute(f"integrals.{name}", delta)
    if cache_key is not None:
        # Cached regardless of convergence: the partial solution is the
        # deterministic outcome of these settings, so a retry with identical
        # settings should not silently re-run the whole iteration.
        while len(_SCF_CACHE) >= _SCF_CACHE_MAX_ENTRIES:
            _SCF_CACHE.pop(next(iter(_SCF_CACHE)))  # FIFO eviction
        _SCF_CACHE[cache_key] = result
    if not result.converged and not allow_unconverged:
        raise ScfNotConvergedError(result)
    return result


def _solve_rhf(
    molecule: Molecule,
    basis: Optional[Sequence[BasisFunction]],
    max_iterations: int,
    convergence: float,
    damping: float,
) -> "ScfResult":
    """The actual SCF iteration (cache handling and tracing live in run_rhf)."""
    basis = list(basis) if basis is not None else build_sto3g_basis(molecule)
    n_occupied = molecule.n_electrons // 2
    if n_occupied > len(basis):
        raise ValueError("not enough basis functions for the electron count")

    overlap = build_overlap_matrix(basis)
    core = build_core_hamiltonian(basis, molecule)
    eri = build_electron_repulsion_tensor(basis)

    density = np.zeros_like(overlap)
    energy = 0.0
    converged = False
    orbital_energies = np.zeros(len(basis))
    coefficients = np.zeros_like(overlap)

    for iteration in range(1, max_iterations + 1):
        fock = _build_fock_matrix(core, density, eri)
        orbital_energies, coefficients = eigh(fock, overlap)
        occupied = coefficients[:, :n_occupied]
        new_density = 2.0 * occupied @ occupied.T
        if damping > 0.0 and iteration > 1:
            new_density = (1.0 - damping) * new_density + damping * density

        electronic_energy = 0.5 * np.sum(new_density * (core + fock))
        new_energy = electronic_energy + molecule.nuclear_repulsion

        density_change = np.max(np.abs(new_density - density))
        energy_change = abs(new_energy - energy)
        density, energy = new_density, new_energy
        if iteration > 1 and energy_change < convergence and density_change < convergence:
            converged = True
            break

    # Recompute the energy consistently with the final density.
    fock = _build_fock_matrix(core, density, eri)
    electronic_energy = 0.5 * np.sum(density * (core + fock))
    energy = electronic_energy + molecule.nuclear_repulsion

    result = ScfResult(
        molecule=molecule,
        basis=list(basis),
        energy=float(energy),
        orbital_energies=orbital_energies,
        orbital_coefficients=coefficients,
        density_matrix=density,
        core_hamiltonian=core,
        overlap=overlap,
        electron_repulsion=eri,
        n_iterations=iteration,
        converged=converged,
    )
    return result
