"""Molecular integrals over contracted Cartesian Gaussians.

McMurchie-Davidson scheme: overlaps, kinetic energy, nuclear attraction and
electron repulsion integrals (ERIs) are assembled from Hermite Gaussian
expansion coefficients and Boys functions.  This is the computational kernel
that replaces PySCF/Psi4 in this offline reproduction; it is exact (not an
approximation) and validated against known Hartree-Fock energies in the test
suite.

Performance layer (caches are bit-transparent — every cached or vectorized
path returns exactly the floats the direct recursion returns):

* :func:`hermite_expansion`, :func:`boys_function` and
  :func:`hermite_coulomb` are memoized — the expansion coefficients depend
  only on the Gaussian *pair*, so one shell pair's table is computed once and
  reused across every quartet it appears in instead of once per quartet;
* a shell-pair data cache (:func:`shell_pair_data`) stores the pairwise
  composite exponents/centers and the full Hermite expansion tables as numpy
  arrays, keyed by the pair of contracted functions;
* :func:`electron_repulsion` evaluates all primitive quartets of a contracted
  ERI in one vectorized sweep over the ``(Ka, Kb, Kc, Kd)`` grid (the Hermite
  Coulomb recursion runs on whole quartet arrays) instead of one Python call
  per primitive quartet;
* :func:`set_integral_caching` / :func:`clear_integral_caches` switch the
  whole layer off (falling back to the seed's scalar recursion, used by the
  ``benchmarks/bench_compile.py`` before/after comparison) and drop the
  cached state.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.special import hyp1f1

from repro.chemistry.basis import BasisFunction, Molecule
from repro.obs.metrics import get_metrics

#: Whether the memoization/vectorization layer is active (see
#: :func:`set_integral_caching`).
_CACHING_ENABLED = True

#: Shell-pair cache traffic, in the global obs registry (cached objects:
#: one attribute add per event, no registry lookup on the hot path).
_PAIR_HITS = get_metrics().counter("chemistry.integrals.shell_pair.hits")
_PAIR_MISSES = get_metrics().counter("chemistry.integrals.shell_pair.misses")


def boys_function(n: int, x: float) -> float:
    """Boys function ``F_n(x)`` via the confluent hypergeometric function."""
    if _CACHING_ENABLED:
        return _boys_function_cached(n, x)
    return _boys_function_direct(n, x)


def _boys_function_direct(n: int, x: float) -> float:
    return float(hyp1f1(n + 0.5, n + 1.5, -x) / (2.0 * n + 1.0))


_boys_function_cached = lru_cache(maxsize=1 << 18)(_boys_function_direct)


def hermite_expansion(
    i: int, j: int, t: int, separation: float, alpha: float, beta: float
) -> float:
    """Hermite Gaussian expansion coefficient ``E_t^{ij}`` (one dimension).

    Recursion of McMurchie and Davidson for the product of two Gaussians with
    exponents ``alpha`` and ``beta`` separated by ``separation`` along one
    Cartesian axis.  The coefficient depends only on the Gaussian *pair*, so
    it is memoized: one shell pair's coefficients are computed once and
    served from cache across the many integral quartets the pair appears in.
    """
    if _CACHING_ENABLED:
        return _hermite_expansion_cached(i, j, t, separation, alpha, beta)
    return _hermite_expansion_direct(i, j, t, separation, alpha, beta)


def _hermite_expansion_direct(
    i: int, j: int, t: int, separation: float, alpha: float, beta: float
) -> float:
    p = alpha + beta
    q = alpha * beta / p
    if t < 0 or t > i + j:
        return 0.0
    if i == j == t == 0:
        return math.exp(-q * separation * separation)
    if j == 0:
        return (
            (1.0 / (2.0 * p)) * hermite_expansion(i - 1, j, t - 1, separation, alpha, beta)
            - (q * separation / alpha) * hermite_expansion(i - 1, j, t, separation, alpha, beta)
            + (t + 1) * hermite_expansion(i - 1, j, t + 1, separation, alpha, beta)
        )
    return (
        (1.0 / (2.0 * p)) * hermite_expansion(i, j - 1, t - 1, separation, alpha, beta)
        + (q * separation / beta) * hermite_expansion(i, j - 1, t, separation, alpha, beta)
        + (t + 1) * hermite_expansion(i, j - 1, t + 1, separation, alpha, beta)
    )


# Bounded: keys contain continuous separations/exponents, so a geometry sweep
# would otherwise grow the table without limit.
_hermite_expansion_cached = lru_cache(maxsize=1 << 20)(_hermite_expansion_direct)


def hermite_coulomb(
    t: int, u: int, v: int, n: int, p: float, x: float, y: float, z: float, distance_sq: float
) -> float:
    """Hermite Coulomb auxiliary integral ``R^n_{tuv}``."""
    if _CACHING_ENABLED:
        return _hermite_coulomb_cached(t, u, v, n, p, x, y, z, distance_sq)
    return _hermite_coulomb_direct(t, u, v, n, p, x, y, z, distance_sq)


def _hermite_coulomb_direct(
    t: int, u: int, v: int, n: int, p: float, x: float, y: float, z: float, distance_sq: float
) -> float:
    if t < 0 or u < 0 or v < 0:
        return 0.0
    if t == u == v == 0:
        return ((-2.0 * p) ** n) * boys_function(n, p * distance_sq)
    if t > 0:
        value = 0.0
        if t > 1:
            value += (t - 1) * hermite_coulomb(t - 2, u, v, n + 1, p, x, y, z, distance_sq)
        value += x * hermite_coulomb(t - 1, u, v, n + 1, p, x, y, z, distance_sq)
        return value
    if u > 0:
        value = 0.0
        if u > 1:
            value += (u - 1) * hermite_coulomb(t, u - 2, v, n + 1, p, x, y, z, distance_sq)
        value += y * hermite_coulomb(t, u - 1, v, n + 1, p, x, y, z, distance_sq)
        return value
    value = 0.0
    if v > 1:
        value += (v - 1) * hermite_coulomb(t, u, v - 2, n + 1, p, x, y, z, distance_sq)
    value += z * hermite_coulomb(t, u, v - 1, n + 1, p, x, y, z, distance_sq)
    return value


_hermite_coulomb_cached = lru_cache(maxsize=1 << 18)(_hermite_coulomb_direct)


# ----------------------------------------------------------------------
# Shell-pair data cache
# ----------------------------------------------------------------------
class ShellPairData:
    """Pairwise primitive data of two contracted Gaussians, as numpy arrays.

    Everything here depends only on the *pair* ``(a, b)`` — composite
    exponents ``p``, composite centers ``P`` and the one-dimensional Hermite
    expansion tables — so it is computed once per pair and reused by every
    integral quartet containing the pair.  All entries reproduce the scalar
    recursion bit-for-bit (the tables are filled from the memoized scalar
    :func:`hermite_expansion`; the composite arithmetic performs the same
    IEEE float64 operations elementwise).
    """

    __slots__ = ("p", "composite", "expansion", "lmn_a", "lmn_b")

    def __init__(self, function_a: BasisFunction, function_b: BasisFunction):
        exps_a = np.asarray(function_a.exponents, dtype=np.float64)
        exps_b = np.asarray(function_b.exponents, dtype=np.float64)
        self.lmn_a = function_a.lmn
        self.lmn_b = function_b.lmn
        self.p = exps_a[:, None] + exps_b[None, :]
        self.composite = [
            (exps_a[:, None] * function_a.center[axis]
             + exps_b[None, :] * function_b.center[axis]) / self.p
            for axis in range(3)
        ]
        # expansion[axis][t][i, j] = E_t^{l1 l2} for primitives (i, j).
        self.expansion = []
        for axis in range(3):
            l1 = function_a.lmn[axis]
            l2 = function_b.lmn[axis]
            separation = function_a.center[axis] - function_b.center[axis]
            tables = []
            for t in range(l1 + l2 + 1):
                table = np.empty_like(self.p)
                for i, alpha in enumerate(function_a.exponents):
                    for j, beta in enumerate(function_b.exponents):
                        table[i, j] = hermite_expansion(l1, l2, t, separation, alpha, beta)
                tables.append(table)
            self.expansion.append(tables)


def _basis_function_key(function: BasisFunction) -> Tuple:
    return (
        function.center,
        function.lmn,
        function.exponents,
        function.normalized_coefficients,
    )


#: Bounded (FIFO): pair keys contain continuous centers/exponents, so a
#: geometry sweep would otherwise accumulate array tables without limit.
_SHELL_PAIR_CACHE: Dict[Tuple, ShellPairData] = {}
_SHELL_PAIR_CACHE_MAX_ENTRIES = 4096


def shell_pair_data(function_a: BasisFunction, function_b: BasisFunction) -> ShellPairData:
    """The (cached) :class:`ShellPairData` of a contracted-function pair."""
    key = (_basis_function_key(function_a), _basis_function_key(function_b))
    data = _SHELL_PAIR_CACHE.get(key)
    if data is None:
        _PAIR_MISSES.inc()
        data = ShellPairData(function_a, function_b)
        if _CACHING_ENABLED:
            while len(_SHELL_PAIR_CACHE) >= _SHELL_PAIR_CACHE_MAX_ENTRIES:
                _SHELL_PAIR_CACHE.pop(next(iter(_SHELL_PAIR_CACHE)))
            _SHELL_PAIR_CACHE[key] = data
    else:
        _PAIR_HITS.inc()
    return data


def clear_integral_caches() -> None:
    """Drop every memoized integral quantity (Hermite, Boys, shell pairs)."""
    _hermite_expansion_cached.cache_clear()
    _hermite_coulomb_cached.cache_clear()
    _boys_function_cached.cache_clear()
    _SHELL_PAIR_CACHE.clear()


def integral_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of every integral cache, one JSON-ready dict.

    The SCF span records the *delta* of this dict across a solve, so a trace
    shows exactly how much integral work the chemistry front end served from
    cache versus recomputed.
    """
    stats: Dict[str, int] = {}
    for name, cached in (
        ("boys", _boys_function_cached),
        ("hermite_expansion", _hermite_expansion_cached),
        ("hermite_coulomb", _hermite_coulomb_cached),
    ):
        info = cached.cache_info()
        stats[f"{name}.hits"] = info.hits
        stats[f"{name}.misses"] = info.misses
        stats[f"{name}.size"] = info.currsize
    stats["shell_pair.hits"] = _PAIR_HITS.value
    stats["shell_pair.misses"] = _PAIR_MISSES.value
    stats["shell_pair.size"] = len(_SHELL_PAIR_CACHE)
    return stats


def set_integral_caching(enabled: bool) -> bool:
    """Enable/disable the caching + vectorization layer; returns the old flag.

    Disabling clears every cache and routes :func:`hermite_expansion`,
    :func:`boys_function`, :func:`hermite_coulomb` and
    :func:`electron_repulsion` through the direct scalar recursion — the
    seed-era behavior the compile benchmark measures as its "before" state.
    Both modes produce bit-identical integrals.
    """
    global _CACHING_ENABLED
    previous = _CACHING_ENABLED
    _CACHING_ENABLED = bool(enabled)
    clear_integral_caches()
    return previous


# ----------------------------------------------------------------------
# Primitive integrals
# ----------------------------------------------------------------------
def primitive_overlap(
    alpha: float,
    lmn1: Sequence[int],
    center_a: Sequence[float],
    beta: float,
    lmn2: Sequence[int],
    center_b: Sequence[float],
) -> float:
    """Overlap of two primitive Cartesian Gaussians."""
    p = alpha + beta
    value = (math.pi / p) ** 1.5
    for axis in range(3):
        value *= hermite_expansion(
            lmn1[axis], lmn2[axis], 0, center_a[axis] - center_b[axis], alpha, beta
        )
    return value


def primitive_kinetic(
    alpha: float,
    lmn1: Sequence[int],
    center_a: Sequence[float],
    beta: float,
    lmn2: Sequence[int],
    center_b: Sequence[float],
) -> float:
    """Kinetic-energy integral of two primitive Gaussians."""
    l2, m2, n2 = lmn2

    def shifted(dl: int, dm: int, dn: int) -> float:
        shifted_lmn = (l2 + dl, m2 + dm, n2 + dn)
        if min(shifted_lmn) < 0:
            return 0.0
        return primitive_overlap(alpha, lmn1, center_a, beta, shifted_lmn, center_b)

    term0 = beta * (2 * (l2 + m2 + n2) + 3) * shifted(0, 0, 0)
    term1 = -2.0 * beta ** 2 * (shifted(2, 0, 0) + shifted(0, 2, 0) + shifted(0, 0, 2))
    term2 = -0.5 * (
        l2 * (l2 - 1) * shifted(-2, 0, 0)
        + m2 * (m2 - 1) * shifted(0, -2, 0)
        + n2 * (n2 - 1) * shifted(0, 0, -2)
    )
    return term0 + term1 + term2


def primitive_nuclear(
    alpha: float,
    lmn1: Sequence[int],
    center_a: Sequence[float],
    beta: float,
    lmn2: Sequence[int],
    center_b: Sequence[float],
    nucleus: Sequence[float],
) -> float:
    """Nuclear-attraction integral of two primitives with a unit-charge nucleus."""
    p = alpha + beta
    composite = [
        (alpha * center_a[axis] + beta * center_b[axis]) / p for axis in range(3)
    ]
    pc = [composite[axis] - nucleus[axis] for axis in range(3)]
    distance_sq = sum(component * component for component in pc)

    l1, m1, n1 = lmn1
    l2, m2, n2 = lmn2
    value = 0.0
    for t in range(l1 + l2 + 1):
        ex = hermite_expansion(l1, l2, t, center_a[0] - center_b[0], alpha, beta)
        if ex == 0.0:
            continue
        for u in range(m1 + m2 + 1):
            ey = hermite_expansion(m1, m2, u, center_a[1] - center_b[1], alpha, beta)
            if ey == 0.0:
                continue
            for v in range(n1 + n2 + 1):
                ez = hermite_expansion(n1, n2, v, center_a[2] - center_b[2], alpha, beta)
                if ez == 0.0:
                    continue
                value += ex * ey * ez * hermite_coulomb(
                    t, u, v, 0, p, pc[0], pc[1], pc[2], distance_sq
                )
    return 2.0 * math.pi / p * value


def primitive_electron_repulsion(
    alpha: float, lmn1: Sequence[int], center_a: Sequence[float],
    beta: float, lmn2: Sequence[int], center_b: Sequence[float],
    gamma: float, lmn3: Sequence[int], center_c: Sequence[float],
    delta: float, lmn4: Sequence[int], center_d: Sequence[float],
) -> float:
    """Two-electron repulsion integral ``(ab|cd)`` over primitives (chemists' notation)."""
    l1, m1, n1 = lmn1
    l2, m2, n2 = lmn2
    l3, m3, n3 = lmn3
    l4, m4, n4 = lmn4
    p = alpha + beta
    q = gamma + delta
    composite_p = [
        (alpha * center_a[axis] + beta * center_b[axis]) / p for axis in range(3)
    ]
    composite_q = [
        (gamma * center_c[axis] + delta * center_d[axis]) / q for axis in range(3)
    ]
    reduced = p * q / (p + q)
    pq = [composite_p[axis] - composite_q[axis] for axis in range(3)]
    distance_sq = sum(component * component for component in pq)

    # Precompute the one-dimensional Hermite expansions for the bra and ket.
    ex1 = [hermite_expansion(l1, l2, t, center_a[0] - center_b[0], alpha, beta) for t in range(l1 + l2 + 1)]
    ey1 = [hermite_expansion(m1, m2, u, center_a[1] - center_b[1], alpha, beta) for u in range(m1 + m2 + 1)]
    ez1 = [hermite_expansion(n1, n2, v, center_a[2] - center_b[2], alpha, beta) for v in range(n1 + n2 + 1)]
    ex2 = [hermite_expansion(l3, l4, t, center_c[0] - center_d[0], gamma, delta) for t in range(l3 + l4 + 1)]
    ey2 = [hermite_expansion(m3, m4, u, center_c[1] - center_d[1], gamma, delta) for u in range(m3 + m4 + 1)]
    ez2 = [hermite_expansion(n3, n4, v, center_c[2] - center_d[2], gamma, delta) for v in range(n3 + n4 + 1)]

    value = 0.0
    for t, ex1_t in enumerate(ex1):
        if ex1_t == 0.0:
            continue
        for u, ey1_u in enumerate(ey1):
            if ey1_u == 0.0:
                continue
            for v, ez1_v in enumerate(ez1):
                if ez1_v == 0.0:
                    continue
                for tau, ex2_t in enumerate(ex2):
                    if ex2_t == 0.0:
                        continue
                    for nu, ey2_u in enumerate(ey2):
                        if ey2_u == 0.0:
                            continue
                        for phi, ez2_v in enumerate(ez2):
                            if ez2_v == 0.0:
                                continue
                            sign = (-1.0) ** (tau + nu + phi)
                            value += (
                                ex1_t * ey1_u * ez1_v * ex2_t * ey2_u * ez2_v * sign
                                * hermite_coulomb(
                                    t + tau, u + nu, v + phi, 0, reduced,
                                    pq[0], pq[1], pq[2], distance_sq,
                                )
                            )
    value *= 2.0 * math.pi ** 2.5 / (p * q * math.sqrt(p + q))
    return value


# ----------------------------------------------------------------------
# Contracted integrals
# ----------------------------------------------------------------------
def _contract_pair(function_a: BasisFunction, function_b: BasisFunction, primitive) -> float:
    total = 0.0
    for exp_a, coeff_a in zip(function_a.exponents, function_a.normalized_coefficients):
        for exp_b, coeff_b in zip(function_b.exponents, function_b.normalized_coefficients):
            total += coeff_a * coeff_b * primitive(exp_a, exp_b)
    return total


def overlap(function_a: BasisFunction, function_b: BasisFunction) -> float:
    """Contracted overlap integral."""
    return _contract_pair(
        function_a,
        function_b,
        lambda a, b: primitive_overlap(
            a, function_a.lmn, function_a.center, b, function_b.lmn, function_b.center
        ),
    )


def kinetic(function_a: BasisFunction, function_b: BasisFunction) -> float:
    """Contracted kinetic-energy integral."""
    return _contract_pair(
        function_a,
        function_b,
        lambda a, b: primitive_kinetic(
            a, function_a.lmn, function_a.center, b, function_b.lmn, function_b.center
        ),
    )


def nuclear_attraction(
    function_a: BasisFunction, function_b: BasisFunction, molecule: Molecule
) -> float:
    """Contracted nuclear-attraction integral summed over all nuclei (with charges)."""
    total = 0.0
    for atom in molecule.atoms:
        contribution = _contract_pair(
            function_a,
            function_b,
            lambda a, b, nucleus=atom.position: primitive_nuclear(
                a, function_a.lmn, function_a.center,
                b, function_b.lmn, function_b.center, nucleus,
            ),
        )
        total -= atom.atomic_number * contribution
    return total


def electron_repulsion_scalar(
    function_a: BasisFunction,
    function_b: BasisFunction,
    function_c: BasisFunction,
    function_d: BasisFunction,
) -> float:
    """Contracted ``(ab|cd)`` via one Python call per primitive quartet.

    The seed implementation, kept as the reference the vectorized path is
    differential-tested against (and as the "before" half of the compile
    benchmark).
    """
    total = 0.0
    for exp_a, coeff_a in zip(function_a.exponents, function_a.normalized_coefficients):
        for exp_b, coeff_b in zip(function_b.exponents, function_b.normalized_coefficients):
            for exp_c, coeff_c in zip(function_c.exponents, function_c.normalized_coefficients):
                for exp_d, coeff_d in zip(function_d.exponents, function_d.normalized_coefficients):
                    total += (
                        coeff_a * coeff_b * coeff_c * coeff_d
                        * primitive_electron_repulsion(
                            exp_a, function_a.lmn, function_a.center,
                            exp_b, function_b.lmn, function_b.center,
                            exp_c, function_c.lmn, function_c.center,
                            exp_d, function_d.lmn, function_d.center,
                        )
                    )
    return total


def _integer_power(base: np.ndarray, exponent: int) -> np.ndarray:
    """Elementwise ``base ** exponent`` via Python's float pow.

    ``np.power`` and CPython's ``float.__pow__`` may round differently in the
    last ulp for integer exponents; the scalar recursion uses the latter, so
    the vectorized path must too for bit-identical integrals.
    """
    if exponent == 0:
        return np.ones_like(base)
    return np.array(
        [value ** exponent for value in base.ravel().tolist()], dtype=np.float64
    ).reshape(base.shape)


def _electron_repulsion_vectorized(
    function_a: BasisFunction,
    function_b: BasisFunction,
    function_c: BasisFunction,
    function_d: BasisFunction,
) -> float:
    """Contracted ``(ab|cd)`` over the whole primitive-quartet grid at once.

    All per-quartet composite quantities and the Hermite Coulomb recursion are
    evaluated on ``(Ka, Kb, Kc, Kd)`` numpy arrays.  Every elementwise
    operation replicates the scalar implementation's operation order exactly
    (single IEEE additions/multiplications in the same sequence; the Boys
    ufunc applied to an array equals its scalar application per element), so
    the result is bit-identical to :func:`electron_repulsion_scalar`.
    """
    bra = shell_pair_data(function_a, function_b)
    ket = shell_pair_data(function_c, function_d)

    p = bra.p[:, :, None, None]
    q = ket.p[None, None, :, :]
    reduced = p * q / (p + q)
    deltas = [
        bra.composite[axis][:, :, None, None] - ket.composite[axis][None, None, :, :]
        for axis in range(3)
    ]
    x, y, z = deltas
    distance_sq = x * x + y * y + z * z
    boys_argument = reduced * distance_sq

    coulomb_cache: Dict[Tuple[int, int, int, int], np.ndarray] = {}

    def coulomb(t: int, u: int, v: int, n: int):
        """Grid-valued ``R^n_{tuv}``; mirrors the scalar recursion term order."""
        if t < 0 or u < 0 or v < 0:
            return 0.0
        key = (t, u, v, n)
        cached = coulomb_cache.get(key)
        if cached is not None:
            return cached
        if t == u == v == 0:
            value = _integer_power(-2.0 * reduced, n) * (
                hyp1f1(n + 0.5, n + 1.5, -boys_argument) / (2.0 * n + 1.0)
            )
        elif t > 0:
            value = 0.0
            if t > 1:
                value += (t - 1) * coulomb(t - 2, u, v, n + 1)
            value += x * coulomb(t - 1, u, v, n + 1)
        elif u > 0:
            value = 0.0
            if u > 1:
                value += (u - 1) * coulomb(t, u - 2, v, n + 1)
            value += y * coulomb(t, u - 1, v, n + 1)
        else:
            value = 0.0
            if v > 1:
                value += (v - 1) * coulomb(t, u, v - 2, n + 1)
            value += z * coulomb(t, u, v - 1, n + 1)
        coulomb_cache[key] = value
        return value

    value = np.zeros_like(reduced)
    for t, ex1_t in enumerate(bra.expansion[0]):
        if not ex1_t.any():
            continue
        for u, ey1_u in enumerate(bra.expansion[1]):
            if not ey1_u.any():
                continue
            e12 = ex1_t * ey1_u
            for v, ez1_v in enumerate(bra.expansion[2]):
                if not ez1_v.any():
                    continue
                e_bra = (e12 * ez1_v)[:, :, None, None]
                for tau, ex2_t in enumerate(ket.expansion[0]):
                    if not ex2_t.any():
                        continue
                    e4 = e_bra * ex2_t[None, None, :, :]
                    for nu, ey2_u in enumerate(ket.expansion[1]):
                        if not ey2_u.any():
                            continue
                        e5 = e4 * ey2_u[None, None, :, :]
                        for phi, ez2_v in enumerate(ket.expansion[2]):
                            if not ez2_v.any():
                                continue
                            sign = (-1.0) ** (tau + nu + phi)
                            value += (
                                e5 * ez2_v[None, None, :, :] * sign
                                * coulomb(t + tau, u + nu, v + phi, 0)
                            )
    value = value * (2.0 * math.pi ** 2.5 / (p * q * np.sqrt(p + q)))

    coeff_a = np.asarray(function_a.normalized_coefficients, dtype=np.float64)
    coeff_b = np.asarray(function_b.normalized_coefficients, dtype=np.float64)
    coeff_c = np.asarray(function_c.normalized_coefficients, dtype=np.float64)
    coeff_d = np.asarray(function_d.normalized_coefficients, dtype=np.float64)
    contributions = (
        (coeff_a[:, None] * coeff_b[None, :])[:, :, None, None]
        * coeff_c[None, None, :, None]
        * coeff_d[None, None, None, :]
        * value
    )
    # Sequential left-to-right accumulation in the scalar loop's (a, b, c, d)
    # order (C-order ravel), so the contraction rounds identically.
    total = 0.0
    for contribution in contributions.ravel().tolist():
        total += contribution
    return total


def electron_repulsion(
    function_a: BasisFunction,
    function_b: BasisFunction,
    function_c: BasisFunction,
    function_d: BasisFunction,
) -> float:
    """Contracted two-electron integral ``(ab|cd)`` in chemists' notation."""
    if _CACHING_ENABLED:
        return _electron_repulsion_vectorized(
            function_a, function_b, function_c, function_d
        )
    return electron_repulsion_scalar(function_a, function_b, function_c, function_d)


# ----------------------------------------------------------------------
# Full integral tensors
# ----------------------------------------------------------------------
def build_overlap_matrix(basis: Sequence[BasisFunction]) -> np.ndarray:
    """Overlap matrix S in the AO basis."""
    n = len(basis)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            matrix[i, j] = matrix[j, i] = overlap(basis[i], basis[j])
    return matrix


def build_kinetic_matrix(basis: Sequence[BasisFunction]) -> np.ndarray:
    """Kinetic-energy matrix T in the AO basis."""
    n = len(basis)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            matrix[i, j] = matrix[j, i] = kinetic(basis[i], basis[j])
    return matrix


def build_nuclear_matrix(basis: Sequence[BasisFunction], molecule: Molecule) -> np.ndarray:
    """Nuclear-attraction matrix V in the AO basis."""
    n = len(basis)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            matrix[i, j] = matrix[j, i] = nuclear_attraction(basis[i], basis[j], molecule)
    return matrix


def build_core_hamiltonian(basis: Sequence[BasisFunction], molecule: Molecule) -> np.ndarray:
    """Core Hamiltonian ``H_core = T + V``."""
    return build_kinetic_matrix(basis) + build_nuclear_matrix(basis, molecule)


def build_electron_repulsion_tensor(basis: Sequence[BasisFunction]) -> np.ndarray:
    """Full ERI tensor ``(ij|kl)`` in chemists' notation, using 8-fold symmetry."""
    n = len(basis)
    tensor = np.zeros((n, n, n, n))
    for i in range(n):
        for j in range(i + 1):
            ij = i * (i + 1) // 2 + j
            for k in range(n):
                for l in range(k + 1):
                    kl = k * (k + 1) // 2 + l
                    if ij < kl:
                        continue
                    value = electron_repulsion(basis[i], basis[j], basis[k], basis[l])
                    for a, b, c, d in (
                        (i, j, k, l), (j, i, k, l), (i, j, l, k), (j, i, l, k),
                        (k, l, i, j), (l, k, i, j), (k, l, j, i), (l, k, j, i),
                    ):
                        tensor[a, b, c, d] = value
    return tensor
