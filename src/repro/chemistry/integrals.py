"""Molecular integrals over contracted Cartesian Gaussians.

McMurchie-Davidson scheme: overlaps, kinetic energy, nuclear attraction and
electron repulsion integrals (ERIs) are assembled from Hermite Gaussian
expansion coefficients and Boys functions.  This is the computational kernel
that replaces PySCF/Psi4 in this offline reproduction; it is exact (not an
approximation) and validated against known Hartree-Fock energies in the test
suite.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np
from scipy.special import hyp1f1

from repro.chemistry.basis import BasisFunction, Molecule


def boys_function(n: int, x: float) -> float:
    """Boys function ``F_n(x)`` via the confluent hypergeometric function."""
    return float(hyp1f1(n + 0.5, n + 1.5, -x) / (2.0 * n + 1.0))


def hermite_expansion(
    i: int, j: int, t: int, separation: float, alpha: float, beta: float
) -> float:
    """Hermite Gaussian expansion coefficient ``E_t^{ij}`` (one dimension).

    Recursion of McMurchie and Davidson for the product of two Gaussians with
    exponents ``alpha`` and ``beta`` separated by ``separation`` along one
    Cartesian axis.
    """
    p = alpha + beta
    q = alpha * beta / p
    if t < 0 or t > i + j:
        return 0.0
    if i == j == t == 0:
        return math.exp(-q * separation * separation)
    if j == 0:
        return (
            (1.0 / (2.0 * p)) * hermite_expansion(i - 1, j, t - 1, separation, alpha, beta)
            - (q * separation / alpha) * hermite_expansion(i - 1, j, t, separation, alpha, beta)
            + (t + 1) * hermite_expansion(i - 1, j, t + 1, separation, alpha, beta)
        )
    return (
        (1.0 / (2.0 * p)) * hermite_expansion(i, j - 1, t - 1, separation, alpha, beta)
        + (q * separation / beta) * hermite_expansion(i, j - 1, t, separation, alpha, beta)
        + (t + 1) * hermite_expansion(i, j - 1, t + 1, separation, alpha, beta)
    )


def hermite_coulomb(
    t: int, u: int, v: int, n: int, p: float, x: float, y: float, z: float, distance_sq: float
) -> float:
    """Hermite Coulomb auxiliary integral ``R^n_{tuv}``."""
    if t < 0 or u < 0 or v < 0:
        return 0.0
    if t == u == v == 0:
        return ((-2.0 * p) ** n) * boys_function(n, p * distance_sq)
    if t > 0:
        value = 0.0
        if t > 1:
            value += (t - 1) * hermite_coulomb(t - 2, u, v, n + 1, p, x, y, z, distance_sq)
        value += x * hermite_coulomb(t - 1, u, v, n + 1, p, x, y, z, distance_sq)
        return value
    if u > 0:
        value = 0.0
        if u > 1:
            value += (u - 1) * hermite_coulomb(t, u - 2, v, n + 1, p, x, y, z, distance_sq)
        value += y * hermite_coulomb(t, u - 1, v, n + 1, p, x, y, z, distance_sq)
        return value
    value = 0.0
    if v > 1:
        value += (v - 1) * hermite_coulomb(t, u, v - 2, n + 1, p, x, y, z, distance_sq)
    value += z * hermite_coulomb(t, u, v - 1, n + 1, p, x, y, z, distance_sq)
    return value


# ----------------------------------------------------------------------
# Primitive integrals
# ----------------------------------------------------------------------
def primitive_overlap(
    alpha: float,
    lmn1: Sequence[int],
    center_a: Sequence[float],
    beta: float,
    lmn2: Sequence[int],
    center_b: Sequence[float],
) -> float:
    """Overlap of two primitive Cartesian Gaussians."""
    p = alpha + beta
    value = (math.pi / p) ** 1.5
    for axis in range(3):
        value *= hermite_expansion(
            lmn1[axis], lmn2[axis], 0, center_a[axis] - center_b[axis], alpha, beta
        )
    return value


def primitive_kinetic(
    alpha: float,
    lmn1: Sequence[int],
    center_a: Sequence[float],
    beta: float,
    lmn2: Sequence[int],
    center_b: Sequence[float],
) -> float:
    """Kinetic-energy integral of two primitive Gaussians."""
    l2, m2, n2 = lmn2

    def shifted(dl: int, dm: int, dn: int) -> float:
        shifted_lmn = (l2 + dl, m2 + dm, n2 + dn)
        if min(shifted_lmn) < 0:
            return 0.0
        return primitive_overlap(alpha, lmn1, center_a, beta, shifted_lmn, center_b)

    term0 = beta * (2 * (l2 + m2 + n2) + 3) * shifted(0, 0, 0)
    term1 = -2.0 * beta ** 2 * (shifted(2, 0, 0) + shifted(0, 2, 0) + shifted(0, 0, 2))
    term2 = -0.5 * (
        l2 * (l2 - 1) * shifted(-2, 0, 0)
        + m2 * (m2 - 1) * shifted(0, -2, 0)
        + n2 * (n2 - 1) * shifted(0, 0, -2)
    )
    return term0 + term1 + term2


def primitive_nuclear(
    alpha: float,
    lmn1: Sequence[int],
    center_a: Sequence[float],
    beta: float,
    lmn2: Sequence[int],
    center_b: Sequence[float],
    nucleus: Sequence[float],
) -> float:
    """Nuclear-attraction integral of two primitives with a unit-charge nucleus."""
    p = alpha + beta
    composite = [
        (alpha * center_a[axis] + beta * center_b[axis]) / p for axis in range(3)
    ]
    pc = [composite[axis] - nucleus[axis] for axis in range(3)]
    distance_sq = sum(component * component for component in pc)

    l1, m1, n1 = lmn1
    l2, m2, n2 = lmn2
    value = 0.0
    for t in range(l1 + l2 + 1):
        ex = hermite_expansion(l1, l2, t, center_a[0] - center_b[0], alpha, beta)
        if ex == 0.0:
            continue
        for u in range(m1 + m2 + 1):
            ey = hermite_expansion(m1, m2, u, center_a[1] - center_b[1], alpha, beta)
            if ey == 0.0:
                continue
            for v in range(n1 + n2 + 1):
                ez = hermite_expansion(n1, n2, v, center_a[2] - center_b[2], alpha, beta)
                if ez == 0.0:
                    continue
                value += ex * ey * ez * hermite_coulomb(
                    t, u, v, 0, p, pc[0], pc[1], pc[2], distance_sq
                )
    return 2.0 * math.pi / p * value


def primitive_electron_repulsion(
    alpha: float, lmn1: Sequence[int], center_a: Sequence[float],
    beta: float, lmn2: Sequence[int], center_b: Sequence[float],
    gamma: float, lmn3: Sequence[int], center_c: Sequence[float],
    delta: float, lmn4: Sequence[int], center_d: Sequence[float],
) -> float:
    """Two-electron repulsion integral ``(ab|cd)`` over primitives (chemists' notation)."""
    l1, m1, n1 = lmn1
    l2, m2, n2 = lmn2
    l3, m3, n3 = lmn3
    l4, m4, n4 = lmn4
    p = alpha + beta
    q = gamma + delta
    composite_p = [
        (alpha * center_a[axis] + beta * center_b[axis]) / p for axis in range(3)
    ]
    composite_q = [
        (gamma * center_c[axis] + delta * center_d[axis]) / q for axis in range(3)
    ]
    reduced = p * q / (p + q)
    pq = [composite_p[axis] - composite_q[axis] for axis in range(3)]
    distance_sq = sum(component * component for component in pq)

    # Precompute the one-dimensional Hermite expansions for the bra and ket.
    ex1 = [hermite_expansion(l1, l2, t, center_a[0] - center_b[0], alpha, beta) for t in range(l1 + l2 + 1)]
    ey1 = [hermite_expansion(m1, m2, u, center_a[1] - center_b[1], alpha, beta) for u in range(m1 + m2 + 1)]
    ez1 = [hermite_expansion(n1, n2, v, center_a[2] - center_b[2], alpha, beta) for v in range(n1 + n2 + 1)]
    ex2 = [hermite_expansion(l3, l4, t, center_c[0] - center_d[0], gamma, delta) for t in range(l3 + l4 + 1)]
    ey2 = [hermite_expansion(m3, m4, u, center_c[1] - center_d[1], gamma, delta) for u in range(m3 + m4 + 1)]
    ez2 = [hermite_expansion(n3, n4, v, center_c[2] - center_d[2], gamma, delta) for v in range(n3 + n4 + 1)]

    value = 0.0
    for t, ex1_t in enumerate(ex1):
        if ex1_t == 0.0:
            continue
        for u, ey1_u in enumerate(ey1):
            if ey1_u == 0.0:
                continue
            for v, ez1_v in enumerate(ez1):
                if ez1_v == 0.0:
                    continue
                for tau, ex2_t in enumerate(ex2):
                    if ex2_t == 0.0:
                        continue
                    for nu, ey2_u in enumerate(ey2):
                        if ey2_u == 0.0:
                            continue
                        for phi, ez2_v in enumerate(ez2):
                            if ez2_v == 0.0:
                                continue
                            sign = (-1.0) ** (tau + nu + phi)
                            value += (
                                ex1_t * ey1_u * ez1_v * ex2_t * ey2_u * ez2_v * sign
                                * hermite_coulomb(
                                    t + tau, u + nu, v + phi, 0, reduced,
                                    pq[0], pq[1], pq[2], distance_sq,
                                )
                            )
    value *= 2.0 * math.pi ** 2.5 / (p * q * math.sqrt(p + q))
    return value


# ----------------------------------------------------------------------
# Contracted integrals
# ----------------------------------------------------------------------
def _contract_pair(function_a: BasisFunction, function_b: BasisFunction, primitive) -> float:
    total = 0.0
    for exp_a, coeff_a in zip(function_a.exponents, function_a.normalized_coefficients):
        for exp_b, coeff_b in zip(function_b.exponents, function_b.normalized_coefficients):
            total += coeff_a * coeff_b * primitive(exp_a, exp_b)
    return total


def overlap(function_a: BasisFunction, function_b: BasisFunction) -> float:
    """Contracted overlap integral."""
    return _contract_pair(
        function_a,
        function_b,
        lambda a, b: primitive_overlap(
            a, function_a.lmn, function_a.center, b, function_b.lmn, function_b.center
        ),
    )


def kinetic(function_a: BasisFunction, function_b: BasisFunction) -> float:
    """Contracted kinetic-energy integral."""
    return _contract_pair(
        function_a,
        function_b,
        lambda a, b: primitive_kinetic(
            a, function_a.lmn, function_a.center, b, function_b.lmn, function_b.center
        ),
    )


def nuclear_attraction(
    function_a: BasisFunction, function_b: BasisFunction, molecule: Molecule
) -> float:
    """Contracted nuclear-attraction integral summed over all nuclei (with charges)."""
    total = 0.0
    for atom in molecule.atoms:
        contribution = _contract_pair(
            function_a,
            function_b,
            lambda a, b, nucleus=atom.position: primitive_nuclear(
                a, function_a.lmn, function_a.center,
                b, function_b.lmn, function_b.center, nucleus,
            ),
        )
        total -= atom.atomic_number * contribution
    return total


def electron_repulsion(
    function_a: BasisFunction,
    function_b: BasisFunction,
    function_c: BasisFunction,
    function_d: BasisFunction,
) -> float:
    """Contracted two-electron integral ``(ab|cd)`` in chemists' notation."""
    total = 0.0
    for exp_a, coeff_a in zip(function_a.exponents, function_a.normalized_coefficients):
        for exp_b, coeff_b in zip(function_b.exponents, function_b.normalized_coefficients):
            for exp_c, coeff_c in zip(function_c.exponents, function_c.normalized_coefficients):
                for exp_d, coeff_d in zip(function_d.exponents, function_d.normalized_coefficients):
                    total += (
                        coeff_a * coeff_b * coeff_c * coeff_d
                        * primitive_electron_repulsion(
                            exp_a, function_a.lmn, function_a.center,
                            exp_b, function_b.lmn, function_b.center,
                            exp_c, function_c.lmn, function_c.center,
                            exp_d, function_d.lmn, function_d.center,
                        )
                    )
    return total


# ----------------------------------------------------------------------
# Full integral tensors
# ----------------------------------------------------------------------
def build_overlap_matrix(basis: Sequence[BasisFunction]) -> np.ndarray:
    """Overlap matrix S in the AO basis."""
    n = len(basis)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            matrix[i, j] = matrix[j, i] = overlap(basis[i], basis[j])
    return matrix


def build_kinetic_matrix(basis: Sequence[BasisFunction]) -> np.ndarray:
    """Kinetic-energy matrix T in the AO basis."""
    n = len(basis)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            matrix[i, j] = matrix[j, i] = kinetic(basis[i], basis[j])
    return matrix


def build_nuclear_matrix(basis: Sequence[BasisFunction], molecule: Molecule) -> np.ndarray:
    """Nuclear-attraction matrix V in the AO basis."""
    n = len(basis)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            matrix[i, j] = matrix[j, i] = nuclear_attraction(basis[i], basis[j], molecule)
    return matrix


def build_core_hamiltonian(basis: Sequence[BasisFunction], molecule: Molecule) -> np.ndarray:
    """Core Hamiltonian ``H_core = T + V``."""
    return build_kinetic_matrix(basis) + build_nuclear_matrix(basis, molecule)


def build_electron_repulsion_tensor(basis: Sequence[BasisFunction]) -> np.ndarray:
    """Full ERI tensor ``(ij|kl)`` in chemists' notation, using 8-fold symmetry."""
    n = len(basis)
    tensor = np.zeros((n, n, n, n))
    for i in range(n):
        for j in range(i + 1):
            ij = i * (i + 1) // 2 + j
            for k in range(n):
                for l in range(k + 1):
                    kl = k * (k + 1) // 2 + l
                    if ij < kl:
                        continue
                    value = electron_repulsion(basis[i], basis[j], basis[k], basis[l])
                    for a, b, c, d in (
                        (i, j, k, l), (j, i, k, l), (i, j, l, k), (j, i, l, k),
                        (k, l, i, j), (l, k, i, j), (k, l, j, i), (l, k, j, i),
                    ):
                        tensor[a, b, c, d] = value
    return tensor
