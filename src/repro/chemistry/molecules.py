"""Ground-state geometries of the molecules evaluated in the paper.

Table I of the paper covers HF (hydrogen fluoride), LiH, BeH2, NH3 and H2O in
the STO-3G basis at their ground-state geometries.  H2 is included as the
smallest test system.  All geometries are standard experimental equilibrium
structures given in Angstrom.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.chemistry.basis import Molecule

#: Geometry type: list of (element, (x, y, z)) in Angstrom.
Geometry = List[Tuple[str, Tuple[float, float, float]]]


def h2_geometry(bond_length: float = 0.7414) -> Geometry:
    """Molecular hydrogen at the given bond length (Angstrom)."""
    return [("H", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, bond_length))]


def lih_geometry(bond_length: float = 1.5949) -> Geometry:
    """Lithium hydride at its equilibrium bond length."""
    return [("Li", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, bond_length))]


def hf_geometry(bond_length: float = 0.9168) -> Geometry:
    """Hydrogen fluoride at its equilibrium bond length."""
    return [("F", (0.0, 0.0, 0.0)), ("H", (0.0, 0.0, bond_length))]


def beh2_geometry(bond_length: float = 1.3264) -> Geometry:
    """Linear beryllium dihydride."""
    return [
        ("Be", (0.0, 0.0, 0.0)),
        ("H", (0.0, 0.0, bond_length)),
        ("H", (0.0, 0.0, -bond_length)),
    ]


def water_geometry(bond_length: float = 0.9572, angle_degrees: float = 104.52) -> Geometry:
    """Water at its experimental equilibrium geometry."""
    half_angle = math.radians(angle_degrees) / 2.0
    x = bond_length * math.sin(half_angle)
    z = bond_length * math.cos(half_angle)
    return [
        ("O", (0.0, 0.0, 0.0)),
        ("H", (x, 0.0, z)),
        ("H", (-x, 0.0, z)),
    ]


def ammonia_geometry(bond_length: float = 1.0116, angle_degrees: float = 106.67) -> Geometry:
    """Pyramidal ammonia with the given N-H length and H-N-H angle."""
    angle = math.radians(angle_degrees)
    # Place the three hydrogens on a circle below the nitrogen such that the
    # H-N-H angle matches: with polar angle θ from the C3 axis,
    # cos(HNH) = cos²θ + sin²θ cos(120°).
    cos_theta_sq = (2.0 * math.cos(angle) + 1.0) / 3.0
    # Guard against tiny negative values from round-off.
    cos_theta_sq = max(cos_theta_sq, 0.0)
    cos_theta = math.sqrt(cos_theta_sq)
    sin_theta = math.sqrt(max(1.0 - cos_theta_sq, 0.0))
    radius = bond_length * sin_theta
    height = -bond_length * cos_theta
    geometry: Geometry = [("N", (0.0, 0.0, 0.0))]
    for k in range(3):
        azimuth = 2.0 * math.pi * k / 3.0
        geometry.append(
            ("H", (radius * math.cos(azimuth), radius * math.sin(azimuth), height))
        )
    return geometry


#: Registry of named geometries used by the benchmark harnesses.
GEOMETRIES: Dict[str, Geometry] = {
    "H2": h2_geometry(),
    "LiH": lih_geometry(),
    "HF": hf_geometry(),
    "BeH2": beh2_geometry(),
    "H2O": water_geometry(),
    "NH3": ammonia_geometry(),
}


def make_molecule(name: str, charge: int = 0) -> Molecule:
    """Build a :class:`Molecule` for one of the named Table-I systems."""
    if name not in GEOMETRIES:
        raise ValueError(f"unknown molecule {name!r}; available: {sorted(GEOMETRIES)}")
    return Molecule.from_angstrom(GEOMETRIES[name], charge=charge, name=name)
