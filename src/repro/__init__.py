"""repro — CNOT-optimized compilation of fermionic VQE simulations.

Reproduction of Wang, Cian, Li, Markov and Nam, *Ever more optimized
simulations of fermionic systems on a quantum computer* (DAC 2023,
arXiv:2303.03460).

The package is organised bottom-up:

* :mod:`repro.operators` — fermionic and Pauli/qubit operator algebra;
* :mod:`repro.transforms` — Jordan-Wigner, Bravyi-Kitaev, parity, ternary-tree
  and generalized GL(N,2) fermion-to-qubit transformations;
* :mod:`repro.circuits` — circuit IR, Pauli-exponential synthesis, CNOT
  cancellation accounting and peephole optimization;
* :mod:`repro.optimizers` — simulated annealing, graph coloring, GTSP genetic
  algorithm, particle swarm, TSP heuristics;
* :mod:`repro.chemistry` — STO-3G integrals, Hartree-Fock, molecular
  Hamiltonians and MP2;
* :mod:`repro.simulator` — exact statevector simulation and FCI references;
* :mod:`repro.vqe` — UCCSD terms, HMP2 ordering and the adaptive VQE loop;
* :mod:`repro.baselines` — the prior-art compiler (the paper's "GT" column);
* :mod:`repro.core` — the paper's contribution as a staged pipeline: hybrid
  encoding, advanced sorting and the advanced fermion-to-qubit transformation
  (the Fig. 2 flow);
* :mod:`repro.api` — the unified compilation API: the
  :class:`~repro.api.CompilerBackend` protocol, the string-keyed backend
  registry, the frozen :class:`~repro.api.CompilerConfig`, and the memoized
  :func:`~repro.api.compile_batch` service;
* :mod:`repro.hardware` — device coupling-graph topologies (line, ring,
  grid, heavy-hex, custom), SABRE-style SWAP routing, and topology-steered
  Pauli-exponential synthesis; set ``CompilerConfig(topology=...)`` and every
  backend reports routed CNOT/SWAP/depth metrics next to the Table-I counts;
* :mod:`repro.service` — compile-as-a-service: an asyncio job API
  (submit/status/result/cancel, priorities, backpressure, in-flight dedup)
  over a persistent sharded on-disk compile cache shared across processes,
  with per-tier hit-rate and latency metrics.

Quickstart
----------
Every compilation flow is a backend behind one interface:

>>> from repro.api import CompileRequest, CompilerConfig, get_backend
>>> request = CompileRequest(terms=terms, config=CompilerConfig(seed=0))
>>> get_backend("advanced").compile(request).cnot_count

Batches — many ansatz sizes, several backends — compile in one memoized call:

>>> from repro.api import compile_batch
>>> batch = compile_batch([request], backends=("jw", "bk", "gt", "advanced"))
>>> batch.results[0]["advanced"].breakdown

The molecule-level convenience API returns a Table-I-style row:

>>> from repro import compile_molecule_ansatz
>>> report = compile_molecule_ansatz("LiH", n_terms=4)
>>> report.advanced_cnot_count <= report.jordan_wigner_cnot_count
True

Migrating from the pre-API entry points
---------------------------------------
``AdvancedCompiler(**kwargs).compile(terms)`` and ``compile_advanced(...)``
still work as deprecation shims; their keyword arguments became fields of the
frozen :class:`~repro.api.CompilerConfig`, and the monolithic compile body is
now explicit stages on :class:`~repro.core.AdvancedPipeline` (substitute one
with ``pipeline.with_stage(name, fn)`` instead of flipping booleans).
``BaselineCompiler().compile(terms)`` is ``get_backend("baseline")``, and
``naive_cnot_count(terms, transform)`` is ``get_backend("jw")`` /
``get_backend("bk")``.
"""

from dataclasses import dataclass
from typing import List, Optional

__version__ = "0.1.0"

from repro.api import (
    DEFAULT_BACKEND_NAMES,
    CompileCache,
    CompileRequest,
    CompileResult,
    CompilerConfig,
    available_backends,
    compile_batch,
    get_backend,
    register_backend,
)
from repro.baselines import BaselineCompiler, naive_cnot_count
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.core import AdvancedCompiler, AdvancedPipeline, compile_advanced
from repro.transforms import BravyiKitaevTransform, JordanWignerTransform
from repro.vqe import ExcitationTerm, select_ansatz_terms


@dataclass
class CompilationReport:
    """CNOT counts of one molecule's ansatz under the Table-I compilation flows."""

    molecule: str
    n_terms: int
    n_qubits: int
    jordan_wigner_cnot_count: int
    bravyi_kitaev_cnot_count: int
    baseline_cnot_count: int
    advanced_cnot_count: int
    terms: List[ExcitationTerm]

    @property
    def improvement_over_baseline(self) -> float:
        """Fractional improvement of the advanced flow over the prior art."""
        if self.baseline_cnot_count == 0:
            return 0.0
        return 1.0 - self.advanced_cnot_count / self.baseline_cnot_count


#: Sentinel telling a legacy keyword of compile_molecule_ansatz apart from an
#: explicitly passed value (so conflicts with ``config`` can be rejected).
_UNSET = object()


def compile_molecule_ansatz(
    molecule_name: str,
    n_terms: int,
    n_frozen_spatial_orbitals: int = 1,
    seed=_UNSET,
    baseline_pso_iterations=_UNSET,
    config: Optional[CompilerConfig] = None,
    cache: Optional[CompileCache] = None,
    workers: int = 1,
    **advanced_options,
) -> CompilationReport:
    """End-to-end convenience API: molecule name in, Table-I-style row out.

    Runs Hartree-Fock, selects the ``n_terms`` most important HMP2 excitation
    terms, and compiles them through :func:`repro.api.compile_batch` with the
    four flows compared in Table I of the paper (JW, BK, prior-art baseline,
    and this work's advanced pipeline).  Pass ``config`` to control every
    knob of every flow; the legacy ``seed`` (default 0) /
    ``baseline_pso_iterations`` (default 0) / keyword style still works and
    builds the config for you, but cannot be combined with an explicit
    ``config``.  On the legacy path the keyword options scope to the advanced
    flow only (as they always did): the GT column keeps the prior art's own
    compression setting, so ablating the advanced pipeline never silently
    moves the baseline it is compared against.
    """
    if config is None:
        config = CompilerConfig(
            seed=0 if seed is _UNSET else seed,
            baseline_pso_iterations=(
                0 if baseline_pso_iterations is _UNSET else baseline_pso_iterations
            ),
            **advanced_options,
        )
        baseline_config = config.replace(use_bosonic_encoding=True)
    elif advanced_options or seed is not _UNSET or baseline_pso_iterations is not _UNSET:
        raise TypeError(
            "pass either config or the legacy seed/baseline_pso_iterations/"
            "keyword options, not both"
        )
    else:
        baseline_config = config

    molecule = make_molecule(molecule_name)
    frozen = n_frozen_spatial_orbitals if molecule_name != "H2" else 0
    scf = run_rhf(molecule)
    hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=frozen)
    terms = select_ansatz_terms(hamiltonian, n_terms)
    n_qubits = hamiltonian.n_spin_orbitals

    request = CompileRequest(terms=tuple(terms), n_qubits=n_qubits, config=config)
    if baseline_config == config:
        row = compile_batch(
            [request],
            backends=tuple(DEFAULT_BACKEND_NAMES),
            workers=workers,
            cache=cache,
        ).results[0]
        baseline_result = row["baseline"]
    else:
        # Legacy path with advanced ablation kwargs: the GT column compiles
        # under its own (prior-art) config, so it needs a separate request.
        baseline_request = CompileRequest(
            terms=tuple(terms), n_qubits=n_qubits, config=baseline_config
        )
        shared_cache = cache if cache is not None else CompileCache()
        row = compile_batch(
            [request],
            backends=("jordan-wigner", "bravyi-kitaev", "advanced"),
            workers=workers,
            cache=shared_cache,
        ).results[0]
        baseline_result = compile_batch(
            [baseline_request], backends=("baseline",), workers=workers, cache=shared_cache
        ).results[0]["baseline"]

    return CompilationReport(
        molecule=molecule_name,
        n_terms=len(terms),
        n_qubits=n_qubits,
        jordan_wigner_cnot_count=row["jordan-wigner"].cnot_count,
        bravyi_kitaev_cnot_count=row["bravyi-kitaev"].cnot_count,
        baseline_cnot_count=baseline_result.cnot_count,
        advanced_cnot_count=row["advanced"].cnot_count,
        terms=list(terms),
    )


__all__ = [
    "__version__",
    "CompilationReport",
    "compile_molecule_ansatz",
    # unified API
    "DEFAULT_BACKEND_NAMES",
    "CompileCache",
    "CompileRequest",
    "CompileResult",
    "CompilerConfig",
    "available_backends",
    "compile_batch",
    "get_backend",
    "register_backend",
    # pipeline + deprecated shims
    "AdvancedPipeline",
    "AdvancedCompiler",
    "compile_advanced",
    "BaselineCompiler",
    "naive_cnot_count",
]
