"""repro — CNOT-optimized compilation of fermionic VQE simulations.

Reproduction of Wang, Cian, Li, Markov and Nam, *Ever more optimized
simulations of fermionic systems on a quantum computer* (DAC 2023,
arXiv:2303.03460).

The package is organised bottom-up:

* :mod:`repro.operators` — fermionic and Pauli/qubit operator algebra;
* :mod:`repro.transforms` — Jordan-Wigner, Bravyi-Kitaev, parity, ternary-tree
  and generalized GL(N,2) fermion-to-qubit transformations;
* :mod:`repro.circuits` — circuit IR, Pauli-exponential synthesis, CNOT
  cancellation accounting and peephole optimization;
* :mod:`repro.optimizers` — simulated annealing, graph coloring, GTSP genetic
  algorithm, particle swarm, TSP heuristics;
* :mod:`repro.chemistry` — STO-3G integrals, Hartree-Fock, molecular
  Hamiltonians and MP2;
* :mod:`repro.simulator` — exact statevector simulation and FCI references;
* :mod:`repro.vqe` — UCCSD terms, HMP2 ordering and the adaptive VQE loop;
* :mod:`repro.baselines` — the prior-art compiler (the paper's "GT" column);
* :mod:`repro.core` — the paper's contribution: hybrid encoding, advanced
  sorting and the advanced fermion-to-qubit transformation (Fig. 2 pipeline).

Quickstart
----------
>>> from repro import compile_molecule_ansatz
>>> report = compile_molecule_ansatz("LiH", n_terms=4)
>>> report.advanced_cnot_count <= report.jordan_wigner_cnot_count
True
"""

from dataclasses import dataclass
from typing import List, Optional

__version__ = "0.1.0"

from repro.baselines import BaselineCompiler, naive_cnot_count
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.core import AdvancedCompiler, compile_advanced
from repro.transforms import BravyiKitaevTransform, JordanWignerTransform
from repro.vqe import ExcitationTerm, select_ansatz_terms


@dataclass
class CompilationReport:
    """CNOT counts of one molecule's ansatz under the Table-I compilation flows."""

    molecule: str
    n_terms: int
    n_qubits: int
    jordan_wigner_cnot_count: int
    bravyi_kitaev_cnot_count: int
    baseline_cnot_count: int
    advanced_cnot_count: int
    terms: List[ExcitationTerm]

    @property
    def improvement_over_baseline(self) -> float:
        """Fractional improvement of the advanced flow over the prior art."""
        if self.baseline_cnot_count == 0:
            return 0.0
        return 1.0 - self.advanced_cnot_count / self.baseline_cnot_count


def compile_molecule_ansatz(
    molecule_name: str,
    n_terms: int,
    n_frozen_spatial_orbitals: int = 1,
    seed: Optional[int] = 0,
    baseline_pso_iterations: int = 0,
    **advanced_options,
) -> CompilationReport:
    """End-to-end convenience API: molecule name in, Table-I-style row out.

    Runs Hartree-Fock, selects the ``n_terms`` most important HMP2 excitation
    terms, and compiles them with the four flows compared in Table I of the
    paper (JW, BK, prior-art baseline, and this work's advanced pipeline).
    """
    molecule = make_molecule(molecule_name)
    frozen = n_frozen_spatial_orbitals if molecule_name != "H2" else 0
    scf = run_rhf(molecule)
    hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=frozen)
    terms = select_ansatz_terms(hamiltonian, n_terms)
    n_qubits = hamiltonian.n_spin_orbitals

    jw_count = naive_cnot_count(terms, JordanWignerTransform(n_qubits))
    bk_count = naive_cnot_count(terms, BravyiKitaevTransform(n_qubits))

    baseline = BaselineCompiler()
    if baseline_pso_iterations > 0:
        baseline.search_transform(terms, n_qubits=n_qubits, iterations=baseline_pso_iterations)
    baseline_count = baseline.compile(terms, n_qubits=n_qubits).cnot_count

    advanced = compile_advanced(terms, n_qubits=n_qubits, seed=seed, **advanced_options)

    return CompilationReport(
        molecule=molecule_name,
        n_terms=len(terms),
        n_qubits=n_qubits,
        jordan_wigner_cnot_count=jw_count,
        bravyi_kitaev_cnot_count=bk_count,
        baseline_cnot_count=baseline_count,
        advanced_cnot_count=advanced.cnot_count,
        terms=list(terms),
    )


__all__ = [
    "__version__",
    "CompilationReport",
    "compile_molecule_ansatz",
    "AdvancedCompiler",
    "compile_advanced",
    "BaselineCompiler",
    "naive_cnot_count",
]
