"""Asyncio compile-as-a-service front end over the batch compilation layer.

:class:`CompileService` turns the per-call :func:`repro.api.compile_batch`
machinery into a long-lived service with a job API:

* ``submit(request, backend, priority, deadline_s)`` → job id (backpressure:
  a bounded priority queue; a full queue rejects with
  :class:`ServiceOverloadedError` carrying a computed ``retry_after_s`` hint
  instead of buffering unboundedly);
* ``status(job_id)`` → :class:`JobStatus` snapshot;
* ``result(job_id)`` → awaits and returns the :class:`~repro.api.CompileResult`;
* ``cancel(job_id)`` → cancellation of queued *and* in-flight submitters.

Identical in-flight requests — same memoization key as the in-memory
:class:`~repro.api.CompileCache` — are **deduplicated**: N submitters share
one compilation and N-1 of them are served from the ``dedup`` tier, while
each keeps its *own* result future so per-submitter deadlines, cancellation
and timeouts compose with dedup.  Worker tasks serve each job through the
layered lookup path

    memory (CompileCache) → disk (PersistentCompileCache) → compute

where the compute step reuses the batch layer's worker entry point
(:func:`repro.api.batch._compile_job`) on a caller-supplied executor — pass a
``ProcessPoolExecutor`` (or better, ``executor_factory=`` so the service can
replenish a crashed pool) for real parallelism, or leave the default to run
compilations on the event loop's thread pool.

The resilience layer (this PR's reason to exist) is built from the
:mod:`repro.service.resilience` primitives:

* **Deadlines** — ``submit(..., deadline_s=...)`` arms a watchdog that fails
  the submitter's future with :class:`JobTimedOut` the moment the deadline
  passes, whether the job is still queued or already computing.  A shared
  (deduplicated) compilation keeps running for the submitters that still
  have time.
* **Retries** — transient compute failures (classified by
  :class:`RetryPolicy`; worker crashes and I/O errors by default) are
  retried with exponential backoff and deterministic jitter, bounded by the
  per-job attempt cap and the service-wide retry budget, all surfaced in
  :class:`ServiceMetrics` and traced as ``service.retry`` spans.
* **Worker-crash recovery** — a died process-pool worker surfaces as
  :class:`WorkerCrashed` on the job that hit it (not a poisoned service);
  when the service owns its pool (``executor_factory``) the broken pool is
  replaced before the retry, and dedup joiners receive the retried result.
* **Disk circuit breaker** — consecutive disk-tier faults (I/O errors,
  corrupt shards) open a :class:`CircuitBreaker`; while open, lookups skip
  straight to memory → compute (graceful degradation), and half-open probes
  re-admit the tier once it heals.  Transitions are counted, gauged and
  emitted as ``service.breaker`` spans.
* **Backend fallback chains** — ``CompileService(fallback=("gt", "jw"))``
  retries a job whose backend failed with a typed stage failure, I/O error
  or worker crash (after the retry policy is exhausted) on the next backend
  in the chain.  The substitute result is cached under *its own* backend's
  key (no cache poisoning), served to every submitter, counted in
  ``metrics.fallbacks`` and traced as a ``service.fallback`` span.
* **Graceful shutdown** — ``shutdown(drain=True, timeout_s=...)`` stops
  accepting work and finishes what is queued/in flight before closing,
  instead of cancelling it.

Every tier transition and resilience event is recorded in
:class:`~repro.service.metrics.ServiceMetrics`; the chaos suite
(``tests/service/test_chaos.py``) and ``benchmarks/bench_chaos.py`` drive
the whole layer under :mod:`repro.faults` injection.

Usage::

    async with CompileService(disk_cache=PersistentCompileCache(dir)) as svc:
        job = await svc.submit(request, backend="advanced", deadline_s=30.0)
        result = await svc.result(job)
        svc.metrics.snapshot()
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import BrokenExecutor, Executor
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import faults
from repro.api.backend import CompileRequest, CompileResult, canonical_backend_name
from repro.api.batch import (
    FALLBACK_RETRYABLE,
    CacheKey,
    CompileCache,
    _compile_job,
    _compile_job_traced,
    cache_key_digest,
)
from repro.obs.tracer import get_tracer
from repro.service.cache import PersistentCompileCache
from repro.service.metrics import ServiceMetrics
from repro.service.resilience import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    CircuitBreaker,
    JobTimedOut,
    RetryPolicy,
    WorkerCrashed,
)

#: Failure classes the service's backend fallback chain retries on: the
#: batch layer's set (typed stage failures, I/O errors, broken pools) plus
#: :class:`WorkerCrashed`, the service's own translation of a died worker.
_SERVICE_FALLBACK_RETRYABLE: Tuple[type, ...] = FALLBACK_RETRYABLE + (WorkerCrashed,)


class ServiceOverloadedError(RuntimeError):
    """The job queue is full; the submitter should back off and retry.

    ``retry_after_s`` is the service's own estimate of when a slot should
    free up — current queue depth times the recent median compute time,
    spread over the worker count — so clients can back off proportionally
    to the actual overload instead of guessing.
    """

    def __init__(self, message: str, retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceDrainingError(RuntimeError):
    """The service is shutting down and no longer accepts submissions."""


class UnknownJobError(KeyError):
    """The job id was never issued by this service instance."""


class JobCancelledError(RuntimeError):
    """The awaited job was cancelled before producing a result."""


class JobState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"


@dataclass(frozen=True)
class JobStatus:
    """Point-in-time snapshot of one submitted job."""

    job_id: str
    state: JobState
    backend: str
    priority: int
    tier: Optional[str]
    error: Optional[str]
    deduplicated: bool
    total_s: Optional[float]


#: Sentinel: the compute was abandoned because every submitter gave up.
_ABANDONED = object()


class _Job:
    """Internal per-submit record; deduplicated submits share the *work*.

    Every submitter owns its own result future (so deadlines, cancellation
    and timeouts are per-submitter), while ``link`` ties joiners to the
    primary job that actually occupies a queue slot and computes.
    """

    __slots__ = (
        "job_id", "request", "backend", "key", "priority", "future",
        "deadline_s", "deadline_handle", "submitted_at", "started_at",
        "finished_at", "tier", "error", "cancelled", "link", "joiners",
        "exec_future", "abandon_requested",
    )

    def __init__(self, job_id, request, backend, key, priority, future,
                 deadline_s=None, link=None):
        self.job_id = job_id
        self.request = request
        self.backend = backend
        self.key = key
        self.priority = priority
        self.future = future
        self.deadline_s: Optional[float] = deadline_s
        self.deadline_handle: Optional[asyncio.TimerHandle] = None
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.tier: Optional[str] = None
        self.error: Optional[str] = None
        self.cancelled = False
        self.link: Optional[_Job] = link  # primary job, for deduplicated submits
        self.joiners: List[_Job] = []
        self.exec_future: Optional[asyncio.Future] = None
        self.abandon_requested = False

    @property
    def primary(self) -> "_Job":
        return self.link if self.link is not None else self

    @property
    def group(self) -> List["_Job"]:
        """Every submitter sharing this compilation (primary first)."""
        primary = self.primary
        return [primary] + primary.joiners

    @property
    def abandoned(self) -> bool:
        """No submitter of this compilation is still waiting for it."""
        return all(job.future.done() for job in self.group)

    @property
    def state(self) -> JobState:
        if self.cancelled or self.future.cancelled():
            return JobState.CANCELLED
        if self.future.done():
            exc = self.future.exception()
            if exc is None:
                return JobState.DONE
            if isinstance(exc, JobTimedOut):
                return JobState.TIMED_OUT
            return JobState.FAILED
        if self.primary.started_at is not None:
            return JobState.RUNNING
        return JobState.QUEUED

    def status(self) -> JobStatus:
        finished = self.finished_at
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            backend=self.backend,
            priority=self.priority,
            tier=self.tier,
            error=self.error if self.error is not None else self.primary.error,
            deduplicated=self.link is not None,
            total_s=None if finished is None else finished - self.submitted_at,
        )


class CompileService:
    """Async compile service: bounded priority queue, dedup, tiered caching,
    deadlines, retries, worker-crash recovery and disk circuit breaking.

    Parameters
    ----------
    disk_cache:
        Optional :class:`PersistentCompileCache` shared across processes.
    memory_cache:
        In-memory :class:`~repro.api.CompileCache`; a fresh private one is
        created unless ``use_memory_cache=False`` disables the tier.
    executor:
        Where compilations run.  ``None`` uses the event loop's default
        thread pool; pass a ``ProcessPoolExecutor`` for CPU parallelism
        (the caller owns and shuts it down — and eats crashed pools).
    executor_factory:
        Alternative to ``executor``: a zero-argument callable the service
        uses to create (and own) its executor, and to **replenish** it when
        a pool worker dies — the only mode in which :class:`WorkerCrashed`
        recovery can replace the broken pool.  Mutually exclusive with
        ``executor``.
    n_workers:
        Concurrent worker tasks draining the queue.
    max_queue:
        Queue bound; a full queue makes :meth:`submit` raise
        :class:`ServiceOverloadedError` (the backpressure signal).
    retry_policy:
        :class:`RetryPolicy` for transient compute failures; defaults to
        3 attempts of exponential backoff.  ``RetryPolicy(max_attempts=1)``
        disables retries.
    breaker:
        :class:`CircuitBreaker` guarding the disk tier.  Defaults to a
        5-consecutive-failure breaker whenever ``disk_cache`` is present.
    default_deadline_s:
        Deadline applied to submits that don't pass their own (``None`` =
        no deadline).
    fallback:
        Backend name(s) to retry a job on when its own backend fails with a
        retryable error (typed pipeline :class:`~repro.core.StageFailure`,
        I/O error, worker crash) after the retry policy is exhausted.  Tried
        in order, one attempt each; a success serves every submitter and is
        cached under the fallback backend's own key.

    Lower ``priority`` values run earlier; ties are FIFO.
    """

    def __init__(
        self,
        disk_cache: Optional[PersistentCompileCache] = None,
        memory_cache: Optional[CompileCache] = None,
        executor: Optional[Executor] = None,
        executor_factory: Optional[Callable[[], Executor]] = None,
        n_workers: int = 2,
        max_queue: int = 64,
        use_memory_cache: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        default_deadline_s: Optional[float] = None,
        fallback: Union[str, Sequence[str]] = (),
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if executor is not None and executor_factory is not None:
            raise ValueError("pass either executor or executor_factory, not both")
        if default_deadline_s is not None and default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be None or positive")
        if memory_cache is None and use_memory_cache:
            memory_cache = CompileCache()
        self.disk_cache = disk_cache
        self.memory_cache = memory_cache if use_memory_cache else None
        self.metrics = ServiceMetrics()
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.breaker = breaker
        if self.breaker is None and disk_cache is not None:
            self.breaker = CircuitBreaker()
        if self.breaker is not None:
            self._chain_breaker_callback(self.breaker)
            self.metrics.record_breaker_state(self.breaker.state_code)
        self.default_deadline_s = default_deadline_s
        if isinstance(fallback, str):
            fallback = (fallback,)
        self.fallback_chain: Tuple[str, ...] = tuple(
            canonical_backend_name(name) for name in fallback
        )
        self._executor = executor
        self._executor_factory = executor_factory
        self._n_workers = n_workers
        self._max_queue = max_queue
        self._queue: Optional[asyncio.PriorityQueue] = None
        self._workers: List[asyncio.Task] = []
        self._jobs: Dict[str, _Job] = {}
        self._inflight: Dict[CacheKey, _Job] = {}
        self._seq = itertools.count()
        self._order = itertools.count()  # FIFO tiebreak inside one priority
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CompileService":
        if self._queue is not None:
            raise RuntimeError("service already started")
        self._draining = False
        if self._executor_factory is not None and self._executor is None:
            self._executor = self._executor_factory()
        self._queue = asyncio.PriorityQueue(maxsize=self._max_queue)
        self._workers = [
            asyncio.create_task(self._worker(), name=f"compile-worker-{i}")
            for i in range(self._n_workers)
        ]
        return self

    async def close(self) -> None:
        """Stop the workers; unfinished job futures are cancelled."""
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._queue = None
        self._draining = False
        for job in self._jobs.values():
            self._cancel_deadline(job)
            if not job.future.done():
                job.future.cancel()
        self._inflight.clear()
        if self._executor_factory is not None and self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    async def shutdown(self, drain: bool = True, timeout_s: Optional[float] = None) -> None:
        """Stop accepting work; optionally finish what's already in.

        With ``drain=True`` (the default) the service refuses new submits
        (:class:`ServiceDrainingError`), waits up to ``timeout_s`` seconds
        (``None`` = forever) for every queued and in-flight job to complete,
        then closes.  Work that doesn't finish inside the window — and
        everything, when ``drain=False`` — is cancelled by :meth:`close`.
        """
        self._require_started()
        self._draining = True
        if drain:
            try:
                await asyncio.wait_for(self._queue.join(), timeout_s)
            except asyncio.TimeoutError:
                pass  # the drain window expired; close() cancels the rest
        await self.close()

    async def __aenter__(self) -> "CompileService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def join(self) -> None:
        """Wait until every queued job has been processed."""
        self._require_started()
        await self._queue.join()

    # ------------------------------------------------------------------
    # Job API
    # ------------------------------------------------------------------
    async def submit(
        self,
        request: CompileRequest,
        backend: str = "advanced",
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> str:
        """Enqueue one compilation; returns the job id.

        An identical in-flight request (same memoization key) is joined, not
        re-queued: the new job shares the existing compilation without a
        queue slot, while keeping its own future (and deadline).  A full
        queue raises :class:`ServiceOverloadedError` with a
        ``retry_after_s`` hint and counts a rejection.  ``deadline_s``
        (falling back to the service's ``default_deadline_s``) bounds the
        submit→result time; a missed deadline fails this submitter's future
        with :class:`JobTimedOut` whether the job is queued or in flight.
        """
        self._require_started()
        if self._draining:
            raise ServiceDrainingError(
                "service is draining (shutdown in progress); submission refused"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be None or positive")
        faults.fire("queue")
        canonical = canonical_backend_name(backend)
        key = CompileCache.key(request, canonical)
        job_id = f"job-{next(self._seq)}"
        loop = asyncio.get_running_loop()

        primary = self._inflight.get(key)
        if primary is not None:
            job = _Job(job_id, request, canonical, key, priority,
                       loop.create_future(), deadline_s, link=primary)
            primary.joiners.append(job)
            self._register(job, loop)
            return job_id

        job = _Job(job_id, request, canonical, key, priority,
                   loop.create_future(), deadline_s)
        try:
            self._queue.put_nowait((priority, next(self._order), job))
        except asyncio.QueueFull:
            self.metrics.rejections += 1
            raise ServiceOverloadedError(
                f"compile queue is full ({self._max_queue} jobs); "
                "retry after in-flight work drains",
                retry_after_s=self._retry_after_hint(),
            ) from None
        self._inflight[key] = job
        self._register(job, loop)
        self.metrics.record_queue_depth(self._queue.qsize())
        return job_id

    def _register(self, job: _Job, loop: asyncio.AbstractEventLoop) -> None:
        """Track a new submitter: bookkeeping, warning sink, deadline."""
        self._jobs[job.job_id] = job
        # Mark the future's eventual exception as observed so a never-awaited
        # submitter (cancelled, timed out, abandoned) doesn't trigger the
        # "exception was never retrieved" warning; result() still re-raises.
        job.future.add_done_callback(
            lambda f: None if f.cancelled() else f.exception()
        )
        self.metrics.submitted += 1
        deadline = job.deadline_s if job.deadline_s is not None else self.default_deadline_s
        if deadline is not None:
            job.deadline_s = deadline
            job.deadline_handle = loop.call_later(deadline, self._expire, job)

    def status(self, job_id: str) -> JobStatus:
        return self._job(job_id).status()

    async def result(self, job_id: str) -> CompileResult:
        """Await and return the job's result; re-raises compile failures."""
        job = self._job(job_id)
        if job.cancelled:
            raise JobCancelledError(job_id)
        try:
            return await asyncio.shield(job.future)
        except asyncio.CancelledError:
            if job.future.cancelled():
                raise JobCancelledError(job_id) from None
            raise  # the awaiting task itself was cancelled

    def cancel(self, job_id: str) -> bool:
        """Cancel one submitter; returns ``False`` only for finished jobs.

        Cancelling one of several deduplicated submitters only detaches that
        submitter; the shared compilation proceeds for the rest.  When the
        *last* waiting submitter cancels (or times out) mid-compute, the
        abandonment is propagated to the executor future where possible —
        queued executor work is cancelled outright, a running compile has
        its result discarded — and counted in ``metrics.abandonments``.
        """
        job = self._job(job_id)
        if job.cancelled:
            return True
        if job.future.done():
            return False
        job.cancelled = True
        job.finished_at = time.perf_counter()
        self._cancel_deadline(job)
        job.future.cancel()
        self.metrics.cancellations += 1
        self._maybe_abandon(job.primary)
        return True

    async def compile(
        self,
        request: CompileRequest,
        backend: str = "advanced",
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> CompileResult:
        """Submit-and-await convenience for request/response callers."""
        return await self.result(
            await self.submit(request, backend, priority, deadline_s=deadline_s)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Service metrics plus per-tier cache counters, JSON-ready."""
        data = {"metrics": self.metrics.snapshot()}
        if self.retry_policy is not None:
            data["retry_policy"] = {
                "max_attempts": self.retry_policy.max_attempts,
                "budget": self.retry_policy.budget,
                "budget_remaining": self._retry_budget_remaining(),
            }
        if self.breaker is not None:
            data["breaker"] = {
                "state": self.breaker.state,
                "failure_threshold": self.breaker.failure_threshold,
                "reset_timeout_s": self.breaker.reset_timeout_s,
                "consecutive_failures": self.breaker.consecutive_failures,
            }
        if self.memory_cache is not None:
            data["memory_cache"] = {
                "entries": len(self.memory_cache),
                "hits": self.memory_cache.hits,
                "misses": self.memory_cache.misses,
                "evictions": self.memory_cache.evictions,
                "max_entries": self.memory_cache.max_entries,
            }
        if self.disk_cache is not None:
            data["disk_cache"] = {
                "version": self.disk_cache.version,
                "hits": self.disk_cache.hits,
                "misses": self.disk_cache.misses,
                "stale_invalidations": self.disk_cache.stale_invalidations,
                "corrupt_invalidations": self.disk_cache.corrupt_invalidations,
                "io_errors": self.disk_cache.io_errors,
                "evictions": self.disk_cache.evictions,
            }
        return data

    # ------------------------------------------------------------------
    # Deadlines / cancellation plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _cancel_deadline(job: _Job) -> None:
        if job.deadline_handle is not None:
            job.deadline_handle.cancel()
            job.deadline_handle = None

    def _expire(self, job: _Job) -> None:
        """Deadline watchdog: fail this submitter's future with JobTimedOut."""
        job.deadline_handle = None
        if job.future.done():
            return
        exc = JobTimedOut(job.job_id, job.deadline_s)
        job.error = repr(exc)
        job.finished_at = time.perf_counter()
        job.future.set_exception(exc)
        self.metrics.timeouts += 1
        self.metrics.total.record(job.finished_at - job.submitted_at)
        self._maybe_abandon(job.primary)

    def _maybe_abandon(self, primary: _Job) -> None:
        """If nobody is waiting anymore, pull the plug on in-flight compute."""
        if not primary.abandoned:
            return
        exec_future = primary.exec_future
        if exec_future is not None and not exec_future.done():
            primary.abandon_requested = True
            exec_future.cancel()
            self.metrics.abandonments += 1
        # A still-queued group is skipped (and counted) at dequeue time.

    # ------------------------------------------------------------------
    # Worker path
    # ------------------------------------------------------------------
    def _require_started(self) -> None:
        if self._queue is None:
            raise RuntimeError(
                "service not started; use 'async with CompileService(...)' "
                "or await service.start()"
            )

    def _job(self, job_id: str) -> _Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def _retry_after_hint(self) -> float:
        """Backoff estimate: queue depth × median compute time / workers."""
        depth = self._queue.qsize() if self._queue is not None else self._max_queue
        median_s = self.metrics.compute.percentile(50)
        if median_s is None:
            median_s = 0.1  # no compute samples yet; a token backoff
        return round(max(0.05, (depth + 1) * median_s / self._n_workers), 3)

    def _retry_budget_remaining(self) -> Optional[int]:
        budget = self.retry_policy.budget if self.retry_policy else None
        if budget is None:
            return None
        return max(0, budget - self.metrics.retries)

    # ------------------------------------------------------------------
    # Disk tier behind the circuit breaker
    # ------------------------------------------------------------------
    def _chain_breaker_callback(self, breaker: CircuitBreaker) -> None:
        existing = breaker.on_transition

        def on_transition(old_state: str, new_state: str) -> None:
            self.metrics.record_breaker_state(breaker.state_code)
            if new_state == BREAKER_OPEN:
                self.metrics.breaker_opens += 1
            elif new_state == BREAKER_CLOSED:
                self.metrics.breaker_closes += 1
            # Zero-length marker span: transitions are events, not intervals.
            with get_tracer().span(
                "service.breaker", from_state=old_state, to_state=new_state
            ):
                pass
            if existing is not None:
                existing(old_state, new_state)

        breaker.on_transition = on_transition

    def _breaker_allows(self) -> bool:
        breaker = self.breaker
        if breaker is None or breaker.allow():
            return True
        self.metrics.disk_degraded += 1
        return False

    def _record_disk_outcome(self, ok: bool) -> None:
        if not ok:
            self.metrics.disk_faults += 1
        breaker = self.breaker
        if breaker is not None:
            if ok:
                breaker.record_success()
            else:
                breaker.record_failure()

    def _disk_get(self, key: CacheKey) -> Optional[CompileResult]:
        disk = self.disk_cache
        if disk is None or not self._breaker_allows():
            return None
        before = disk.fault_events
        try:
            result = disk.get(key)
        except OSError:
            self._record_disk_outcome(ok=False)
            return None
        self._record_disk_outcome(ok=disk.fault_events == before)
        return result

    def _disk_put(self, key: CacheKey, result: CompileResult) -> None:
        disk = self.disk_cache
        if disk is None or not self._breaker_allows():
            return
        before = disk.fault_events
        try:
            disk.put(key, result)
        except OSError:
            self._record_disk_outcome(ok=False)
            return  # a failed cache write degrades; the job still succeeds
        self._record_disk_outcome(ok=disk.fault_events == before)

    def _lookup(self, key: CacheKey) -> Tuple[Optional[CompileResult], Optional[str]]:
        """The cache tiers of the lookup path: memory first, then disk."""
        if self.memory_cache is not None:
            result = self.memory_cache.get(key)
            if result is not None:
                return result, "memory"
        result = self._disk_get(key)
        if result is not None:
            return result, "disk"
        return None, None

    # ------------------------------------------------------------------
    # Compute with crash translation and retries
    # ------------------------------------------------------------------
    @staticmethod
    def _task_cancelling() -> bool:
        """Whether the *worker task itself* is being cancelled (shutdown)."""
        task = asyncio.current_task()
        cancelling = getattr(task, "cancelling", None)  # 3.11+
        return bool(cancelling is not None and cancelling())

    def _replenish_executor(self, broken: Optional[Executor]) -> None:
        """Replace a crashed pool when the service owns one (factory mode)."""
        if self._executor_factory is None or self._executor is not broken:
            return  # caller-owned executor, or already replaced by a peer
        self._executor = self._executor_factory()
        if broken is not None:
            broken.shutdown(wait=False)

    async def _run_compute_once(
        self, job: _Job, compute_start: float, backend: Optional[str] = None
    ):
        """One executor round-trip, with worker-crash translation.

        ``backend`` overrides the job's own backend for fallback-chain
        attempts; everything else (executor, crash translation, span
        adoption) is identical.
        """
        backend = backend if backend is not None else job.backend
        loop = asyncio.get_running_loop()
        tracer = get_tracer()
        executor = self._executor
        if tracer.enabled:
            # Executor workers do not inherit the tracing contextvar;
            # collect their span forest explicitly and rebase it at the
            # compute start time.
            exec_future = loop.run_in_executor(
                executor, _compile_job_traced, (backend, job.request)
            )
        else:
            exec_future = loop.run_in_executor(
                executor, _compile_job, (backend, job.request)
            )
        job.exec_future = exec_future
        try:
            raw = await exec_future
        except BrokenExecutor as exc:
            self.metrics.worker_crashes += 1
            self._replenish_executor(executor)
            raise WorkerCrashed(
                f"executor worker died while compiling job {job.job_id}"
            ) from exc
        finally:
            job.exec_future = None
        if tracer.enabled:
            result, spans = raw
            tracer.adopt(spans, at=compute_start)
            return result
        return raw

    async def _compute_with_retries(self, job: _Job):
        """Drive the compute step under the retry policy.

        Returns the result, the ``_ABANDONED`` sentinel when every submitter
        gave up mid-compute, or raises the final (non-retryable or
        exhausted) failure.
        """
        tracer = get_tracer()
        policy = self.retry_policy
        token = cache_key_digest(job.key)
        attempt = 0
        while True:
            try:
                with tracer.span("service.compute", attempt=attempt):
                    compute_start = time.perf_counter()
                    result = await self._run_compute_once(job, compute_start)
                self.metrics.compute.record(time.perf_counter() - compute_start)
                return result
            except asyncio.CancelledError:
                if job.abandon_requested and not self._task_cancelling():
                    return _ABANDONED
                raise
            except Exception as exc:
                attempt += 1
                retryable = policy is not None and policy.is_retryable(exc)
                budget_left = policy is not None and (
                    policy.budget is None or self.metrics.retries < policy.budget
                )
                if (
                    not retryable
                    or not budget_left
                    or attempt >= policy.max_attempts
                    or job.abandoned
                ):
                    raise
                delay = policy.delay_s(attempt - 1, token)
                self.metrics.retries += 1
                with tracer.span(
                    "service.retry",
                    job_id=job.job_id,
                    attempt=attempt,
                    delay_s=round(delay, 4),
                    error=type(exc).__name__,
                ):
                    await asyncio.sleep(delay)

    async def _compute_with_fallback(self, job: _Job):
        """Compute under the retry policy, then walk the backend fallback chain.

        Returns ``(result, fallback_backend)`` where ``fallback_backend`` is
        ``None`` when the job's own backend (or the lookup) produced the
        result.  Re-raises the original failure when the chain is empty,
        ineligible, or exhausted — fallback-attempt errors are subordinate
        to the primary error the submitters should see.
        """
        tracer = get_tracer()
        try:
            return await self._compute_with_retries(job), None
        except asyncio.CancelledError:
            raise
        except _SERVICE_FALLBACK_RETRYABLE as exc:
            for fb_name in self.fallback_chain:
                if fb_name == job.backend:
                    continue
                with tracer.span(
                    "service.fallback", job_id=job.job_id, backend=fb_name
                ) as fb_span:
                    try:
                        compute_start = time.perf_counter()
                        result = await self._run_compute_once(
                            job, compute_start, backend=fb_name
                        )
                    except asyncio.CancelledError:
                        raise
                    except Exception as fb_exc:
                        fb_span.set_attribute("error", type(fb_exc).__name__)
                        continue
                self.metrics.compute.record(time.perf_counter() - compute_start)
                self.metrics.fallbacks += 1
                return result, fb_name
            raise exc

    async def _worker(self) -> None:
        while True:
            _, _, job = await self._queue.get()
            try:
                await self._process(job)
            finally:
                self._queue.task_done()
                self.metrics.record_queue_depth(self._queue.qsize())

    async def _process(self, job: _Job) -> None:
        if job.abandoned:
            # Every submitter cancelled or timed out while the job was still
            # queued; skip the compilation entirely.
            self._inflight.pop(job.key, None)
            finished = time.perf_counter()
            for submitter in job.group:
                if submitter.finished_at is None:
                    submitter.finished_at = finished
            self.metrics.abandonments += 1
            return
        job.started_at = time.perf_counter()
        self.metrics.wait.record(job.started_at - job.submitted_at)
        tracer = get_tracer()
        try:
            with tracer.span(
                "service.job", backend=job.backend, job_id=job.job_id
            ) as job_span:
                with tracer.span("service.lookup"):
                    result, tier = self._lookup(job.key)
                store_key = job.key
                if result is None:
                    result, fallback_backend = await self._compute_with_fallback(job)
                    if result is _ABANDONED:
                        self._inflight.pop(job.key, None)
                        return
                    tier = "compute"
                    if fallback_backend is not None:
                        # The caches stay honest: a fallback backend's result
                        # is stored under its own key, never the failed
                        # primary's — submitters are served directly instead.
                        store_key = CompileCache.key(job.request, fallback_backend)
                        job_span.set_attribute("fallback", fallback_backend)
                    self._disk_put(store_key, result)
                if self.memory_cache is not None:
                    self.memory_cache.put(store_key, result)
                job_span.set_attribute("tier", tier)
        except asyncio.CancelledError:
            for submitter in job.group:
                if not submitter.future.done():
                    submitter.future.cancel()  # service shutdown mid-compile
            raise
        except Exception as exc:
            self._finish(job, error=exc)
            return
        job.tier = tier
        self._finish(job, result=result)

    def _finish(self, job: _Job, result=None, error=None) -> None:
        finished = time.perf_counter()
        self._inflight.pop(job.key, None)
        for submitter in job.group:
            self._cancel_deadline(submitter)
            if submitter.finished_at is None:
                submitter.finished_at = finished
            if submitter.future.done():
                continue  # cancelled or timed out; already settled
            self.metrics.total.record(finished - submitter.submitted_at)
            if error is None:
                tier = job.tier if submitter is job else "dedup"
                submitter.tier = tier
                self.metrics.count_tier(tier)
                submitter.future.set_result(result)
            else:
                submitter.error = repr(error)
                submitter.future.set_exception(error)
        if error is not None:
            if job.error is None:
                job.error = repr(error)
            self.metrics.failures += 1
