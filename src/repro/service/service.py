"""Asyncio compile-as-a-service front end over the batch compilation layer.

:class:`CompileService` turns the per-call :func:`repro.api.compile_batch`
machinery into a long-lived service with a job API:

* ``submit(request, backend, priority)`` → job id (backpressure: a bounded
  priority queue; a full queue rejects with :class:`ServiceOverloadedError`
  instead of buffering unboundedly);
* ``status(job_id)`` → :class:`JobStatus` snapshot;
* ``result(job_id)`` → awaits and returns the :class:`~repro.api.CompileResult`;
* ``cancel(job_id)`` → best-effort cancellation of queued work.

Identical in-flight requests — same memoization key as the in-memory
:class:`~repro.api.CompileCache` — are **deduplicated**: N submitters share
one compilation future and N-1 of them are served from the ``dedup`` tier.
Worker tasks serve each job through the layered lookup path

    memory (CompileCache) → disk (PersistentCompileCache) → compute

where the compute step reuses the batch layer's worker entry point
(:func:`repro.api.batch._compile_job`) on a caller-supplied executor — pass a
``ProcessPoolExecutor`` for real parallelism, or leave the default to run
compilations on the event loop's thread pool.  Every tier transition is
recorded in :class:`~repro.service.metrics.ServiceMetrics`.

Usage::

    async with CompileService(disk_cache=PersistentCompileCache(dir)) as svc:
        job = await svc.submit(request, backend="advanced")
        result = await svc.result(job)
        svc.metrics.snapshot()
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import Executor
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.api.backend import CompileRequest, CompileResult, canonical_backend_name
from repro.api.batch import CacheKey, CompileCache, _compile_job, _compile_job_traced
from repro.obs.tracer import get_tracer
from repro.service.cache import PersistentCompileCache
from repro.service.metrics import ServiceMetrics


class ServiceOverloadedError(RuntimeError):
    """The job queue is full; the submitter should back off and retry."""


class UnknownJobError(KeyError):
    """The job id was never issued by this service instance."""


class JobCancelledError(RuntimeError):
    """The awaited job was cancelled before producing a result."""


class JobState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class JobStatus:
    """Point-in-time snapshot of one submitted job."""

    job_id: str
    state: JobState
    backend: str
    priority: int
    tier: Optional[str]
    error: Optional[str]
    deduplicated: bool
    total_s: Optional[float]


class _Job:
    """Internal per-submit record; deduplicated submits share ``future``."""

    __slots__ = (
        "job_id", "request", "backend", "key", "priority", "future",
        "submitted_at", "started_at", "finished_at", "tier", "error",
        "cancelled", "link", "joiners",
    )

    def __init__(self, job_id, request, backend, key, priority, future, link=None):
        self.job_id = job_id
        self.request = request
        self.backend = backend
        self.key = key
        self.priority = priority
        self.future = future
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.tier: Optional[str] = None
        self.error: Optional[str] = None
        self.cancelled = False
        self.link: Optional[_Job] = link  # primary job, for deduplicated submits
        self.joiners: List[_Job] = []

    @property
    def primary(self) -> "_Job":
        return self.link if self.link is not None else self

    @property
    def abandoned(self) -> bool:
        """Every submitter of this compilation has cancelled."""
        job = self.primary
        return job.cancelled and all(joiner.cancelled for joiner in job.joiners)

    @property
    def state(self) -> JobState:
        if self.cancelled or self.future.cancelled():
            return JobState.CANCELLED
        if self.future.done():
            return JobState.FAILED if self.future.exception() else JobState.DONE
        if self.primary.started_at is not None:
            return JobState.RUNNING
        return JobState.QUEUED

    def status(self) -> JobStatus:
        finished = self.finished_at
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            backend=self.backend,
            priority=self.priority,
            tier=self.tier,
            error=self.primary.error,
            deduplicated=self.link is not None,
            total_s=None if finished is None else finished - self.submitted_at,
        )


class CompileService:
    """Async compile service: bounded priority queue, dedup, tiered caching.

    Parameters
    ----------
    disk_cache:
        Optional :class:`PersistentCompileCache` shared across processes.
    memory_cache:
        In-memory :class:`~repro.api.CompileCache`; a fresh private one is
        created unless ``use_memory_cache=False`` disables the tier.
    executor:
        Where compilations run.  ``None`` uses the event loop's default
        thread pool; pass a ``ProcessPoolExecutor`` for CPU parallelism
        (the caller owns and shuts it down).
    n_workers:
        Concurrent worker tasks draining the queue.
    max_queue:
        Queue bound; a full queue makes :meth:`submit` raise
        :class:`ServiceOverloadedError` (the backpressure signal).

    Lower ``priority`` values run earlier; ties are FIFO.
    """

    def __init__(
        self,
        disk_cache: Optional[PersistentCompileCache] = None,
        memory_cache: Optional[CompileCache] = None,
        executor: Optional[Executor] = None,
        n_workers: int = 2,
        max_queue: int = 64,
        use_memory_cache: bool = True,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if memory_cache is None and use_memory_cache:
            memory_cache = CompileCache()
        self.disk_cache = disk_cache
        self.memory_cache = memory_cache if use_memory_cache else None
        self.metrics = ServiceMetrics()
        self._executor = executor
        self._n_workers = n_workers
        self._max_queue = max_queue
        self._queue: Optional[asyncio.PriorityQueue] = None
        self._workers: List[asyncio.Task] = []
        self._jobs: Dict[str, _Job] = {}
        self._inflight: Dict[CacheKey, _Job] = {}
        self._seq = itertools.count()
        self._order = itertools.count()  # FIFO tiebreak inside one priority

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "CompileService":
        if self._queue is not None:
            raise RuntimeError("service already started")
        self._queue = asyncio.PriorityQueue(maxsize=self._max_queue)
        self._workers = [
            asyncio.create_task(self._worker(), name=f"compile-worker-{i}")
            for i in range(self._n_workers)
        ]
        return self

    async def close(self) -> None:
        """Stop the workers; unfinished job futures are cancelled."""
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._queue = None
        for job in self._jobs.values():
            if not job.future.done():
                job.future.cancel()
        self._inflight.clear()

    async def __aenter__(self) -> "CompileService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def join(self) -> None:
        """Wait until every queued job has been processed."""
        self._require_started()
        await self._queue.join()

    # ------------------------------------------------------------------
    # Job API
    # ------------------------------------------------------------------
    async def submit(
        self,
        request: CompileRequest,
        backend: str = "advanced",
        priority: int = 0,
    ) -> str:
        """Enqueue one compilation; returns the job id.

        An identical in-flight request (same memoization key) is joined, not
        re-queued: the new job shares the existing compilation future and
        costs no queue slot.  A full queue raises
        :class:`ServiceOverloadedError` and counts a rejection.
        """
        self._require_started()
        canonical = canonical_backend_name(backend)
        key = CompileCache.key(request, canonical)
        job_id = f"job-{next(self._seq)}"

        primary = self._inflight.get(key)
        if primary is not None and not primary.future.done():
            job = _Job(job_id, request, canonical, key, priority,
                       primary.future, link=primary)
            primary.joiners.append(job)
            self._jobs[job_id] = job
            self.metrics.submitted += 1
            return job_id

        loop = asyncio.get_running_loop()
        job = _Job(job_id, request, canonical, key, priority, loop.create_future())
        # Mark the shared future's eventual exception as observed so an
        # abandoned job never triggers the "exception was never retrieved"
        # warning; result() still re-raises for every awaiting submitter.
        job.future.add_done_callback(
            lambda f: None if f.cancelled() else f.exception()
        )
        try:
            self._queue.put_nowait((priority, next(self._order), job))
        except asyncio.QueueFull:
            self.metrics.rejections += 1
            raise ServiceOverloadedError(
                f"compile queue is full ({self._max_queue} jobs); "
                "retry after in-flight work drains"
            ) from None
        self._jobs[job_id] = job
        self._inflight[key] = job
        self.metrics.submitted += 1
        self.metrics.record_queue_depth(self._queue.qsize())
        return job_id

    def status(self, job_id: str) -> JobStatus:
        return self._job(job_id).status()

    async def result(self, job_id: str) -> CompileResult:
        """Await and return the job's result; re-raises compile failures."""
        job = self._job(job_id)
        if job.cancelled:
            raise JobCancelledError(job_id)
        try:
            return await asyncio.shield(job.future)
        except asyncio.CancelledError:
            if job.future.cancelled():
                raise JobCancelledError(job_id) from None
            raise  # the awaiting task itself was cancelled

    def cancel(self, job_id: str) -> bool:
        """Best-effort cancel: only not-yet-started work can be cancelled.

        Cancelling one of several deduplicated submitters only detaches that
        submitter; the shared compilation proceeds for the rest and is
        abandoned (skipped by the worker) once every submitter cancels.
        """
        job = self._job(job_id)
        if job.cancelled:
            return True
        if job.future.done() or job.primary.started_at is not None:
            return False
        job.cancelled = True
        self.metrics.cancellations += 1
        return True

    async def compile(
        self,
        request: CompileRequest,
        backend: str = "advanced",
        priority: int = 0,
    ) -> CompileResult:
        """Submit-and-await convenience for request/response callers."""
        return await self.result(await self.submit(request, backend, priority))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Service metrics plus per-tier cache counters, JSON-ready."""
        data = {"metrics": self.metrics.snapshot()}
        if self.memory_cache is not None:
            data["memory_cache"] = {
                "entries": len(self.memory_cache),
                "hits": self.memory_cache.hits,
                "misses": self.memory_cache.misses,
                "evictions": self.memory_cache.evictions,
                "max_entries": self.memory_cache.max_entries,
            }
        if self.disk_cache is not None:
            data["disk_cache"] = {
                "version": self.disk_cache.version,
                "hits": self.disk_cache.hits,
                "misses": self.disk_cache.misses,
                "stale_invalidations": self.disk_cache.stale_invalidations,
                "evictions": self.disk_cache.evictions,
            }
        return data

    # ------------------------------------------------------------------
    # Worker path
    # ------------------------------------------------------------------
    def _require_started(self) -> None:
        if self._queue is None:
            raise RuntimeError(
                "service not started; use 'async with CompileService(...)' "
                "or await service.start()"
            )

    def _job(self, job_id: str) -> _Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def _lookup(self, key: CacheKey) -> Tuple[Optional[CompileResult], Optional[str]]:
        """The cache tiers of the lookup path: memory first, then disk."""
        if self.memory_cache is not None:
            result = self.memory_cache.get(key)
            if result is not None:
                return result, "memory"
        if self.disk_cache is not None:
            result = self.disk_cache.get(key)
            if result is not None:
                return result, "disk"
        return None, None

    async def _worker(self) -> None:
        while True:
            _, _, job = await self._queue.get()
            try:
                await self._process(job)
            finally:
                self._queue.task_done()
                self.metrics.record_queue_depth(self._queue.qsize())

    async def _process(self, job: _Job) -> None:
        if job.abandoned:
            self._inflight.pop(job.key, None)
            finished = time.perf_counter()
            for submitter in [job] + job.joiners:
                submitter.finished_at = finished
            job.future.cancel()
            return
        job.started_at = time.perf_counter()
        self.metrics.wait.record(job.started_at - job.submitted_at)
        tracer = get_tracer()
        try:
            with tracer.span(
                "service.job", backend=job.backend, job_id=job.job_id
            ) as job_span:
                with tracer.span("service.lookup"):
                    result, tier = self._lookup(job.key)
                if result is None:
                    loop = asyncio.get_running_loop()
                    with tracer.span("service.compute"):
                        compute_start = time.perf_counter()
                        if tracer.enabled:
                            # Executor workers do not inherit the tracing
                            # contextvar; collect their span forest explicitly
                            # and rebase it at the compute start time.
                            result, spans = await loop.run_in_executor(
                                self._executor,
                                _compile_job_traced,
                                (job.backend, job.request),
                            )
                            tracer.adopt(spans, at=compute_start)
                        else:
                            result = await loop.run_in_executor(
                                self._executor, _compile_job, (job.backend, job.request)
                            )
                    self.metrics.compute.record(time.perf_counter() - compute_start)
                    tier = "compute"
                    if self.disk_cache is not None:
                        self.disk_cache.put(job.key, result)
                if self.memory_cache is not None:
                    self.memory_cache.put(job.key, result)
                job_span.set_attribute("tier", tier)
        except asyncio.CancelledError:
            job.future.cancel()  # service shutdown mid-compile
            raise
        except Exception as exc:
            self._finish(job, error=exc)
            return
        job.tier = tier
        self._finish(job, result=result)

    def _finish(self, job: _Job, result=None, error=None) -> None:
        finished = time.perf_counter()
        self._inflight.pop(job.key, None)
        for submitter in [job] + job.joiners:
            submitter.finished_at = finished
            if submitter.cancelled:
                continue
            self.metrics.total.record(finished - submitter.submitted_at)
            if error is None:
                tier = job.tier if submitter is job else "dedup"
                submitter.tier = tier
                self.metrics.count_tier(tier)
        if error is not None:
            job.error = repr(error)
            self.metrics.failures += 1
            job.future.set_exception(error)
        else:
            job.future.set_result(result)
