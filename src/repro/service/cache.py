"""Persistent, sharded, versioned on-disk compile cache.

:class:`PersistentCompileCache` stores :class:`~repro.api.CompileResult`
objects content-addressed by the same memoization keys the in-memory
:class:`~repro.api.CompileCache` uses — ``CompileCache.key(request, backend)``
— so the two tiers agree on identity by construction.  Entries live under a
cache *root* directory, sharded by the leading hex characters of the key's
SHA-256 digest (:func:`repro.api.cache_key_digest`) so no single directory
grows unbounded::

    root/
      3f/3fa8...e1.pkl      # one pickled entry per (request, backend) key
      a0/a09c...77.pkl

Three guarantees make the cache safe to share between processes:

* **Atomic writes.**  :meth:`put` pickles the entry into a temporary file in
  the destination shard and ``os.replace``-s it into place, so a concurrent
  reader sees either no entry or a complete one — never a torn write.
* **Version stamping.**  Every entry carries the cache's *version stamp*.
  The default stamp (:func:`golden_version_stamp`) hashes the golden
  regression files under ``tests/golden/`` together with the on-disk format
  version, so whenever compilation semantics change enough to move the pinned
  Table-I numbers, every previously written entry is recognized as stale and
  invalidated on read (or wholesale via :meth:`vacuum`) instead of being
  deserialized into wrong results.
* **Key verification.**  The full memoization key is stored inside the entry
  and compared on read, so a digest collision or a foreign file can never be
  served as a hit.

The cache is bounded: with ``max_entries`` set, :meth:`put` evicts the
least-recently-used entries (file mtime, refreshed on every hit) beyond the
bound.  Eviction tolerates concurrent removals, so many processes can share
one root.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro import faults
from repro.api.backend import CompileResult
from repro.api.batch import CacheKey, cache_key_digest

#: Bumped whenever the on-disk entry layout changes; part of every stamp.
#: 2: CompileResult gained the ``stage_timings`` field.
#: 3: CompileResult gained the ``degraded``/``degraded_stages`` fields.
CACHE_FORMAT_VERSION = 3

#: The golden regression files the default version stamp is derived from.
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"


def golden_version_stamp(golden_dir: Optional[Path] = None) -> str:
    """Cache version stamp tied to the golden regression files.

    Hashes the name and contents of every ``*.json`` under ``tests/golden/``
    (sorted, so the stamp is order-independent) together with
    :data:`CACHE_FORMAT_VERSION`.  The goldens pin the compiled Table-I
    numbers, so any change that moves compilation output also moves this
    stamp and wholesale-invalidates previously cached results.  A missing
    golden directory (e.g. an installed package without the test tree)
    degrades to a stamp over the format version alone.
    """
    digest = hashlib.sha256(f"format={CACHE_FORMAT_VERSION}".encode("utf-8"))
    directory = Path(golden_dir) if golden_dir is not None else GOLDEN_DIR
    if directory.is_dir():
        for path in sorted(directory.glob("*.json")):
            digest.update(path.name.encode("utf-8"))
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


class PersistentCompileCache:
    """Disk tier of the compile-service lookup path (memory → disk → compute).

    Parameters
    ----------
    root:
        Cache directory, created if missing.  Safe to share between
        processes; every write is atomic.
    version:
        Version stamp accepted on read and written into new entries.
        Defaults to :func:`golden_version_stamp`.
    max_entries:
        LRU bound on the number of stored entries (``None`` = unbounded).
    shard_width:
        Leading hex characters of the key digest used as the shard directory
        name (2 → 256 shards).

    Counters (per instance, not persisted): ``hits``, ``misses``,
    ``stale_invalidations`` (version-stamp mismatches removed on read),
    ``corrupt_invalidations`` (unreadable entries removed on read),
    ``io_errors`` (OS-level read/write failures — permission flips, full
    disks, injected faults — which are *not* treated as corruption: the
    entry is left in place and the operation degrades to a miss) and
    ``evictions``.  ``fault_events`` sums the corruption and I/O counters;
    the service's disk circuit breaker watches its delta around every
    disk-tier operation.
    """

    def __init__(
        self,
        root,
        version: Optional[str] = None,
        max_entries: Optional[int] = None,
        shard_width: int = 2,
    ):
        if not 1 <= shard_width <= 8:
            raise ValueError("shard_width must be between 1 and 8")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be None or at least 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.version = version if version is not None else golden_version_stamp()
        self.max_entries = max_entries
        self.shard_width = shard_width
        self.hits = 0
        self.misses = 0
        self.stale_invalidations = 0
        self.corrupt_invalidations = 0
        self.io_errors = 0
        self.evictions = 0

    @property
    def fault_events(self) -> int:
        """Disk misbehaviors observed so far (corrupt entries + I/O errors)."""
        return self.corrupt_invalidations + self.io_errors

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def entry_path(self, key: CacheKey) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        digest = cache_key_digest(key)
        return self.root / digest[: self.shard_width] / f"{digest}.pkl"

    def _entry_paths(self) -> Iterator[Path]:
        """Every stored entry file (temporary write files never match)."""
        return self.root.glob("*/" + "*.pkl")

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _load(self, path: Path, key: Optional[CacheKey]) -> Optional[CompileResult]:
        """Read one entry, enforcing version and key; invalidate bad files."""
        try:
            faults.fire("disk.read", path=path)
            payload = pickle.loads(faults.mangle("disk.read", path.read_bytes()))
            version, stored_key = payload["version"], payload["key"]
            result = payload["result"]
        except FileNotFoundError:
            return None
        except OSError:
            # The disk itself misbehaved (permission flip, EIO, injected
            # fault).  The entry may be perfectly fine, so keep it and
            # degrade to a miss; the breaker above decides systemic policy.
            self.io_errors += 1
            return None
        except Exception:
            # Unreadable pickle (foreign file, interrupted pre-atomic-write
            # tooling, disk corruption): drop it rather than serve garbage.
            self.corrupt_invalidations += 1
            self._unlink(path)
            return None
        if version != self.version:
            self.stale_invalidations += 1
            self._unlink(path)
            return None
        if key is not None and stored_key != key:
            return None  # digest collision or foreign file under our name
        return result

    def get(self, key: CacheKey) -> Optional[CompileResult]:
        """The cached result for ``key``, or ``None`` (counted as a miss)."""
        path = self.entry_path(key)
        result = self._load(path, key)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touch(path)  # refresh LRU recency
        return result

    def peek(self, key: CacheKey) -> Optional[CompileResult]:
        """Like :meth:`get` but without counters or recency refresh."""
        return self._load(self.entry_path(key), key)

    def __contains__(self, key: CacheKey) -> bool:
        return self.peek(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: CacheKey, result: CompileResult) -> None:
        """Atomically store ``result`` under ``key`` and enforce the bound.

        OS-level write failures (full disk, permission flip, injected fault)
        count into ``io_errors`` and propagate as ``OSError`` — the caller
        decides whether a failed cache write is fatal (the service degrades;
        a direct user sees the error).
        """
        path = self.entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            faults.fire("disk.write", path=path)
            payload = faults.mangle(
                "disk.write",
                pickle.dumps(
                    {
                        "version": self.version,
                        "key": key,
                        "result": result,
                        "created_at": time.time(),
                    },
                    protocol=pickle.HIGHEST_PROTOCOL,
                ),
            )
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)  # atomic: no torn files for readers
            except BaseException:
                self._unlink(Path(tmp_name))
                raise
        except OSError:
            self.io_errors += 1
            raise
        self._touch(path)  # stamp recency on the same clock the hits use
        if self.max_entries is not None:
            self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        """Drop least-recently-used entries beyond ``max_entries``.

        Lists the whole cache (O(entries)); fine at the bounded sizes the
        bound itself implies.  Concurrent removals by other processes are
        tolerated — an already-gone file simply doesn't count.
        """
        entries: List[Tuple[int, Path]] = []
        for path in self._entry_paths():
            try:
                # Integer nanoseconds, not the float st_mtime: float64 seconds
                # quantize to hundreds of nanoseconds at the current epoch and
                # would collapse the strictly-increasing stamps _touch writes.
                entries.append((path.stat().st_mtime_ns, path))
            except FileNotFoundError:
                continue
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort()
        for _, path in entries[:excess]:
            if self._unlink(path):
                self.evictions += 1

    # ------------------------------------------------------------------
    # Administration
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Inspection snapshot: sizes, version, per-shard entry counts."""
        per_shard: Dict[str, int] = {}
        total_bytes = 0
        entries = 0
        stale = 0
        for path in self._entry_paths():
            try:
                size = path.stat().st_size
                payload = pickle.loads(path.read_bytes())
                version = payload["version"]
            except Exception:
                continue  # unreadable or vanished mid-scan; vacuum handles it
            entries += 1
            total_bytes += size
            per_shard[path.parent.name] = per_shard.get(path.parent.name, 0) + 1
            if version != self.version:
                stale += 1
        return {
            "root": str(self.root),
            "version": self.version,
            "entries": entries,
            "stale_entries": stale,
            "total_bytes": total_bytes,
            "shards": dict(sorted(per_shard.items())),
            "max_entries": self.max_entries,
            "counters": {
                "hits": self.hits,
                "misses": self.misses,
                "stale_invalidations": self.stale_invalidations,
                "corrupt_invalidations": self.corrupt_invalidations,
                "io_errors": self.io_errors,
                "evictions": self.evictions,
            },
        }

    #: ``vacuum`` only removes ``.tmp`` write files older than this (seconds);
    #: younger ones may belong to a concurrent writer mid-``put``.
    TMP_MAX_AGE_S = 3600.0

    def vacuum(self, tmp_max_age_s: Optional[float] = None) -> int:
        """Remove stale entries and orphaned write files; return the count.

        An entry is stale when its version stamp doesn't match (or it cannot
        be read at all).  ``.tmp``-suffixed files are **never** judged as
        entries: a concurrent writer's mid-``put`` temporary must not be
        counted corrupt and deleted out from under it (the torn-write race
        this method used to lose).  Only ``.tmp`` files older than
        ``tmp_max_age_s`` — orphans of a crashed writer, which no live
        ``put`` can still be holding — are swept.
        """
        max_age = self.TMP_MAX_AGE_S if tmp_max_age_s is None else tmp_max_age_s
        removed = 0
        for path in list(self._entry_paths()):
            if path.name.endswith(".tmp"):
                continue  # never treat a mid-write temporary as an entry
            stale = False
            try:
                stale = pickle.loads(path.read_bytes())["version"] != self.version
            except FileNotFoundError:
                continue
            except Exception:
                stale = True  # unreadable counts as stale
            if stale and self._unlink(path):
                removed += 1
        self.stale_invalidations += removed
        now = time.time()
        for path in list(self.root.glob("*/*.tmp")):
            try:
                age_s = now - path.stat().st_mtime
            except FileNotFoundError:
                continue  # the writer finished (renamed) or another vacuum won
            if age_s > max_age and self._unlink(path):
                removed += 1
        return removed

    def clear(self) -> int:
        """Remove every entry (any version); return the number removed."""
        removed = 0
        for path in list(self._entry_paths()):
            if self._unlink(path):
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Filesystem helpers tolerant of concurrent processes
    # ------------------------------------------------------------------
    @staticmethod
    def _unlink(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    # LRU recency stamps must be strictly increasing even when the clock is
    # coarse (1 s mtime granularity on some filesystems) or two hits land in
    # the same clock tick; otherwise a hot entry touched "at the same time"
    # as a cold one can lose the eviction sort and be dropped.
    _touch_lock = threading.Lock()
    _last_touch_ns = 0

    @classmethod
    def _touch(cls, path: Path) -> None:
        with cls._touch_lock:
            stamp = max(time.time_ns(), cls._last_touch_ns + 1)
            cls._last_touch_ns = stamp
        try:
            os.utime(path, ns=(stamp, stamp))
        except FileNotFoundError:
            pass  # evicted by a concurrent process between read and touch

    def __repr__(self) -> str:
        return (
            f"PersistentCompileCache(root={str(self.root)!r}, "
            f"version={self.version!r}, max_entries={self.max_entries})"
        )
