"""Resilience primitives for the compile service: retries and circuit breaking.

Two small, executor-agnostic policies plus the typed failures they produce:

* :class:`RetryPolicy` — exponential backoff with **deterministic** jitter
  (a hash of the retry token, not a live RNG, so a replayed workload backs
  off identically) and a retryable-exception classification.  The default
  classification retries transient infrastructure failures — ``OSError``
  (which covers :class:`~repro.faults.InjectedFault`), ``ConnectionError``
  and :class:`WorkerCrashed` — and never retries deterministic compile
  errors (a ``ValueError`` from a bad molecule will fail identically every
  attempt) or :class:`JobTimedOut` (the deadline already expired).
  An optional ``budget`` caps total retries service-wide so a systemic
  outage degrades to fast failures instead of a retry storm.

* :class:`CircuitBreaker` — the classic three-state machine guarding the
  disk tier.  ``failure_threshold`` *consecutive* failures open the breaker;
  while open, callers skip the guarded resource (the service degrades to
  memory → compute); after ``reset_timeout_s`` the breaker half-opens and
  admits probe traffic, and ``probe_successes`` consecutive probe successes
  close it again (any probe failure re-opens immediately).  A transition
  callback lets the owner mirror state into metrics/spans.

Both are plain synchronous objects — the asyncio service calls them between
awaits, so no internal locking is needed there; the breaker still takes a
lock so multi-threaded callers (tests, future sync front ends) stay safe.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "JobTimedOut",
    "RetryPolicy",
    "WorkerCrashed",
]


class JobTimedOut(TimeoutError):
    """A job missed its deadline (queued or in-flight); never retried."""

    def __init__(self, job_id: str, deadline_s: float):
        super().__init__(
            f"job {job_id} exceeded its deadline of {deadline_s:g}s"
        )
        self.job_id = job_id
        self.deadline_s = deadline_s


class WorkerCrashed(RuntimeError):
    """A process-pool worker died mid-compile (e.g. OOM-killed).

    Raised in place of the executor's ``BrokenProcessPool`` so the failure is
    (a) scoped to the job that hit it rather than poisoning the service and
    (b) classified as retryable — the pool is replenished and the retry (or a
    dedup joiner awaiting the same future) gets the recomputed result.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and typed classification.

    ``max_attempts`` counts the first try: ``3`` means one compile and up to
    two retries.  The delay before retry ``n`` (0-based) is::

        min(max_delay_s, base_delay_s * multiplier**n) * (1 + jitter * u)

    where ``u ∈ [0, 1)`` is a stable hash of ``(token, n)`` — the token is
    the job's cache-key digest, so two services replaying the same workload
    produce the same backoff schedule while distinct jobs still decorrelate.

    ``budget`` caps the total retries a service may spend across all jobs
    (``None`` = uncapped); the service tracks consumption in its metrics and
    stops retrying once the budget is spent.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    retryable: Tuple[Type[BaseException], ...] = (
        WorkerCrashed,
        OSError,
        ConnectionError,
    )
    budget: Optional[int] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be None or non-negative")

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is worth another attempt under this policy.

        :class:`JobTimedOut` is never retryable even though it subclasses
        ``TimeoutError`` (which a caller may have added to ``retryable``):
        the job's deadline has already passed, so a retry cannot succeed.
        """
        if isinstance(exc, JobTimedOut):
            return False
        return isinstance(exc, self.retryable)

    def delay_s(self, retry_index: int, token: str = "") -> float:
        """Backoff before 0-based retry ``retry_index``, jittered by ``token``."""
        if retry_index < 0:
            raise ValueError("retry_index must be non-negative")
        backoff = min(self.max_delay_s, self.base_delay_s * self.multiplier**retry_index)
        unit = zlib.crc32(f"{token}:{retry_index}".encode("utf-8")) / 2**32
        return backoff * (1.0 + self.jitter * unit)


#: Breaker states, also used as the numeric gauge values in ServiceMetrics.
BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half_open"
BREAKER_OPEN = "open"

#: Gauge encoding of the breaker state (snapshot-friendly ordering).
BREAKER_STATE_CODES = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


@dataclass
class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    ``allow()`` gates access to the guarded resource; ``record_success()`` /
    ``record_failure()`` report outcomes of the accesses that were allowed.
    ``on_transition(old_state, new_state)`` fires synchronously under the
    breaker lock whenever the state changes — keep it cheap (the service
    uses it to bump counters and emit a ``service.breaker`` span).
    """

    failure_threshold: int = 5
    reset_timeout_s: float = 5.0
    probe_successes: int = 2
    clock: Callable[[], float] = time.monotonic
    on_transition: Optional[Callable[[str, str], None]] = None

    state: str = field(default=BREAKER_CLOSED, init=False)
    consecutive_failures: int = field(default=0, init=False)
    _probe_streak: int = field(default=0, init=False)
    _opened_at: float = field(default=0.0, init=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, init=False, repr=False)

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        if self.probe_successes < 1:
            raise ValueError("probe_successes must be at least 1")

    def _transition(self, new_state: str) -> None:
        old_state = self.state
        if old_state == new_state:
            return
        self.state = new_state
        if new_state == BREAKER_OPEN:
            self._opened_at = self.clock()
            self.consecutive_failures = 0
        if new_state in (BREAKER_HALF_OPEN, BREAKER_CLOSED):
            self._probe_streak = 0
            self.consecutive_failures = 0
        if self.on_transition is not None:
            self.on_transition(old_state, new_state)

    def allow(self) -> bool:
        """Whether the guarded resource may be touched right now.

        While open, returns ``False`` until ``reset_timeout_s`` has elapsed,
        then transitions to half-open and admits probe traffic.
        """
        with self._lock:
            if self.state == BREAKER_OPEN:
                if self.clock() - self._opened_at < self.reset_timeout_s:
                    return False
                self._transition(BREAKER_HALF_OPEN)
            return True

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            if self.state == BREAKER_HALF_OPEN:
                self._probe_streak += 1
                if self._probe_streak >= self.probe_successes:
                    self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            if self.state == BREAKER_HALF_OPEN:
                self._transition(BREAKER_OPEN)  # a failed probe re-opens
                return
            self.consecutive_failures += 1
            if self.state == BREAKER_CLOSED and (
                self.consecutive_failures >= self.failure_threshold
            ):
                self._transition(BREAKER_OPEN)

    @property
    def state_code(self) -> int:
        """Numeric state for gauges: 0 closed, 1 half-open, 2 open."""
        return BREAKER_STATE_CODES[self.state]

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"consecutive_failures={self.consecutive_failures}, "
            f"threshold={self.failure_threshold})"
        )
