"""Compile-as-a-service: async job API over a tiered compile cache.

The service layer turns the per-call batch compiler into a long-lived,
shareable service — the "millions of users" deployment story, where most
traffic repeats the same molecules/configs and should never recompile:

* :class:`PersistentCompileCache` — sharded, version-stamped, LRU-bounded
  on-disk results shared across processes (atomic writes, stale-version
  invalidation tied to the golden files);
* :class:`CompileService` — asyncio front end with ``submit / status /
  result / cancel``, per-job priorities and deadlines, a bounded queue
  (backpressure via :class:`ServiceOverloadedError` with a ``retry_after_s``
  hint) and deduplication of identical in-flight requests, serving every job
  through memory → disk → compute;
* the resilience layer — :class:`RetryPolicy` (exponential backoff with
  deterministic jitter), :class:`CircuitBreaker` guarding the disk tier
  (graceful degradation to memory → compute), :class:`JobTimedOut` /
  :class:`WorkerCrashed` typed failures, worker-crash pool replenishment
  and draining shutdown — chaos-tested under :mod:`repro.faults` injection;
* :class:`ServiceMetrics` — per-tier hit rates, queue depth, resilience
  counters (timeouts/retries/breaker transitions) and wait/compute/total
  latency histograms (p50/p95/p99), dumped by ``benchmarks/bench_service.py``
  into ``BENCH_service.json``.

>>> from repro.service import CompileService, PersistentCompileCache
>>> async with CompileService(disk_cache=PersistentCompileCache(".cc")) as svc:
...     result = await svc.compile(request, backend="advanced")
...     svc.metrics.snapshot()["hit_rates"]
"""

from repro.service.cache import (
    CACHE_FORMAT_VERSION,
    PersistentCompileCache,
    golden_version_stamp,
)
from repro.service.metrics import TIERS, LatencyHistogram, ServiceMetrics
from repro.service.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    JobTimedOut,
    RetryPolicy,
    WorkerCrashed,
)
from repro.service.service import (
    CompileService,
    JobCancelledError,
    JobState,
    JobStatus,
    ServiceDrainingError,
    ServiceOverloadedError,
    UnknownJobError,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CACHE_FORMAT_VERSION",
    "CircuitBreaker",
    "CompileService",
    "JobCancelledError",
    "JobState",
    "JobStatus",
    "JobTimedOut",
    "LatencyHistogram",
    "PersistentCompileCache",
    "RetryPolicy",
    "ServiceDrainingError",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "TIERS",
    "UnknownJobError",
    "WorkerCrashed",
    "golden_version_stamp",
]
