"""Observability for the compile service: tier hit rates and latency tails.

:class:`ServiceMetrics` is the single metrics object a
:class:`~repro.service.CompileService` instance owns.  It tracks

* **tier counters** — how many finished jobs were served by each tier of the
  lookup path (``memory`` → ``disk`` → ``compute``) plus ``dedup`` joins
  (submits that attached to an identical in-flight compilation), and the
  failure/cancellation/backpressure-rejection counts;
* **queue pressure** — current and peak queue depth;
* **resilience counters** — deadline timeouts, retries consumed, abandoned
  compilations, pool-worker crashes, backend-fallback completions, disk
  faults observed and lookups that
  skipped the disk tier while its circuit breaker was open, plus the
  breaker's open/close transition counts and current state code;
* **latency histograms** — ``wait`` (submit → worker pickup), ``compute``
  (backend compile only) and ``total`` (submit → result) with p50/p95/p99.

Since the ``repro.obs`` layer landed, everything here is built on its shared
primitives: the counters are :class:`~repro.obs.metrics.Counter`, the queue
gauge is a :class:`~repro.obs.metrics.Gauge`, and the latency histograms are
bounded :class:`~repro.obs.metrics.Histogram` objects (so a long-running
service no longer grows sample memory without bound — see
``DEFAULT_MAX_SAMPLES`` / reservoir sampling in :mod:`repro.obs.metrics`).
:class:`LatencyHistogram` is re-exported from there for compatibility.

Everything is plain-Python and JSON-serializable via :meth:`snapshot`, which
is what ``benchmarks/bench_service.py`` dumps into ``BENCH_service.json``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import Counter, Gauge, LatencyHistogram, MetricsRegistry

__all__ = ["TIERS", "LatencyHistogram", "ServiceMetrics"]

#: The lookup tiers a finished job can be served from.
TIERS = ("memory", "disk", "compute", "dedup")


class ServiceMetrics:
    """Counters, gauges and histograms of one :class:`CompileService`.

    A private :class:`~repro.obs.metrics.MetricsRegistry` backs every field,
    so each service instance snapshots independently; pass ``registry`` to
    aggregate several services into one registry instead.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tier_counters: Dict[str, Counter] = {
            tier: self.registry.counter(f"service.tier.{tier}") for tier in TIERS
        }
        self._submitted = self.registry.counter("service.submitted")
        self._failures = self.registry.counter("service.failures")
        self._cancellations = self.registry.counter("service.cancellations")
        self._rejections = self.registry.counter("service.rejections")
        self._timeouts = self.registry.counter("service.timeouts")
        self._retries = self.registry.counter("service.retries")
        self._abandonments = self.registry.counter("service.abandonments")
        self._worker_crashes = self.registry.counter("service.worker_crashes")
        self._fallbacks = self.registry.counter("service.fallbacks")
        self._disk_faults = self.registry.counter("service.disk_faults")
        self._disk_degraded = self.registry.counter("service.disk_degraded")
        self._breaker_opens = self.registry.counter("service.breaker.opens")
        self._breaker_closes = self.registry.counter("service.breaker.closes")
        self._breaker_state = self.registry.gauge("service.breaker.state")
        self._queue = self.registry.gauge("service.queue_depth")
        self.wait = self.registry.histogram("service.latency.wait")
        self.compute = self.registry.histogram("service.latency.compute")
        self.total = self.registry.histogram("service.latency.total")

    # ------------------------------------------------------------------
    # Counter views (attribute-compatible with the pre-obs implementation:
    # `metrics.submitted += 1` still works through the property setters)
    # ------------------------------------------------------------------
    @property
    def tier_counts(self) -> Dict[str, int]:
        return {tier: counter.value for tier, counter in self._tier_counters.items()}

    @property
    def submitted(self) -> int:
        return self._submitted.value

    @submitted.setter
    def submitted(self, value: int) -> None:
        self._submitted.value = value

    @property
    def failures(self) -> int:
        return self._failures.value

    @failures.setter
    def failures(self, value: int) -> None:
        self._failures.value = value

    @property
    def cancellations(self) -> int:
        return self._cancellations.value

    @cancellations.setter
    def cancellations(self, value: int) -> None:
        self._cancellations.value = value

    @property
    def rejections(self) -> int:
        return self._rejections.value

    @rejections.setter
    def rejections(self, value: int) -> None:
        self._rejections.value = value

    @property
    def timeouts(self) -> int:
        return self._timeouts.value

    @timeouts.setter
    def timeouts(self, value: int) -> None:
        self._timeouts.value = value

    @property
    def retries(self) -> int:
        return self._retries.value

    @retries.setter
    def retries(self, value: int) -> None:
        self._retries.value = value

    @property
    def abandonments(self) -> int:
        return self._abandonments.value

    @abandonments.setter
    def abandonments(self, value: int) -> None:
        self._abandonments.value = value

    @property
    def worker_crashes(self) -> int:
        return self._worker_crashes.value

    @worker_crashes.setter
    def worker_crashes(self, value: int) -> None:
        self._worker_crashes.value = value

    @property
    def fallbacks(self) -> int:
        """Jobs completed by a fallback backend after their own failed."""
        return self._fallbacks.value

    @fallbacks.setter
    def fallbacks(self, value: int) -> None:
        self._fallbacks.value = value

    @property
    def disk_faults(self) -> int:
        return self._disk_faults.value

    @disk_faults.setter
    def disk_faults(self, value: int) -> None:
        self._disk_faults.value = value

    @property
    def disk_degraded(self) -> int:
        return self._disk_degraded.value

    @disk_degraded.setter
    def disk_degraded(self, value: int) -> None:
        self._disk_degraded.value = value

    @property
    def breaker_opens(self) -> int:
        return self._breaker_opens.value

    @breaker_opens.setter
    def breaker_opens(self, value: int) -> None:
        self._breaker_opens.value = value

    @property
    def breaker_closes(self) -> int:
        return self._breaker_closes.value

    @breaker_closes.setter
    def breaker_closes(self, value: int) -> None:
        self._breaker_closes.value = value

    @property
    def breaker_state(self) -> int:
        """Disk-breaker state code: 0 closed, 1 half-open, 2 open."""
        return self._breaker_state.value

    def record_breaker_state(self, code: int) -> None:
        self._breaker_state.set(code)

    @property
    def queue_depth(self) -> int:
        return self._queue.value

    @property
    def queue_depth_peak(self) -> int:
        return self._queue.peak

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count_tier(self, tier: str) -> None:
        counter = self._tier_counters.get(tier)
        if counter is None:
            raise ValueError(f"unknown tier {tier!r}; expected one of {TIERS}")
        counter.inc()

    def record_queue_depth(self, depth: int) -> None:
        self._queue.set(depth)

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------
    @property
    def served(self) -> int:
        """Jobs that finished successfully (every tier, dedup included)."""
        return sum(counter.value for counter in self._tier_counters.values())

    def hit_rate(self, tier: str) -> float:
        """Fraction of served jobs answered by ``tier`` (0.0 when idle)."""
        counter = self._tier_counters.get(tier)
        if counter is None:
            raise ValueError(f"unknown tier {tier!r}; expected one of {TIERS}")
        if self.served == 0:
            return 0.0
        return counter.value / self.served

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of served jobs that avoided a compile entirely."""
        if self.served == 0:
            return 0.0
        avoided = self.served - self._tier_counters["compute"].value
        return avoided / self.served

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """One JSON-serializable dict of everything above."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "tiers": self.tier_counts,
            "hit_rates": {
                tier: round(self.hit_rate(tier), 6) for tier in TIERS
            },
            "cache_hit_rate": round(self.cache_hit_rate, 6),
            "failures": self.failures,
            "cancellations": self.cancellations,
            "rejections": self.rejections,
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "resilience": {
                "timeouts": self.timeouts,
                "retries": self.retries,
                "abandonments": self.abandonments,
                "worker_crashes": self.worker_crashes,
                "fallbacks": self.fallbacks,
                "disk_faults": self.disk_faults,
                "disk_degraded": self.disk_degraded,
                "breaker_opens": self.breaker_opens,
                "breaker_closes": self.breaker_closes,
                "breaker_state": self.breaker_state,
            },
            "latency": {
                "wait": self.wait.summary(),
                "compute": self.compute.summary(),
                "total": self.total.summary(),
            },
        }
