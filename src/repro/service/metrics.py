"""Observability for the compile service: tier hit rates and latency tails.

:class:`ServiceMetrics` is the single metrics object a
:class:`~repro.service.CompileService` instance owns.  It tracks

* **tier counters** — how many finished jobs were served by each tier of the
  lookup path (``memory`` → ``disk`` → ``compute``) plus ``dedup`` joins
  (submits that attached to an identical in-flight compilation), and the
  failure/cancellation/backpressure-rejection counts;
* **queue pressure** — current and peak queue depth;
* **latency histograms** — ``wait`` (submit → worker pickup), ``compute``
  (backend compile only) and ``total`` (submit → result) with p50/p95/p99.

Everything is plain-Python and JSON-serializable via :meth:`snapshot`, which
is what ``benchmarks/bench_service.py`` dumps into ``BENCH_service.json``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: The lookup tiers a finished job can be served from.
TIERS = ("memory", "disk", "compute", "dedup")


class LatencyHistogram:
    """Latency samples with percentile summaries (p50/p95/p99).

    Samples are kept exactly (no binning) and summarized on demand with the
    nearest-rank method; service workloads are small enough that exactness
    beats streaming sketches.
    """

    def __init__(self, name: str):
        self.name = name
        self.samples: List[float] = []

    def record(self, seconds: float) -> None:
        self.samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self.samples)

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile of the samples; ``None`` when empty."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be between 0 and 100")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, round(q / 100 * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> Dict:
        """JSON-ready summary in milliseconds."""
        if not self.samples:
            return {"count": 0}
        to_ms = lambda s: round(s * 1e3, 4)  # noqa: E731 - tiny local adapter
        return {
            "count": len(self.samples),
            "mean_ms": to_ms(sum(self.samples) / len(self.samples)),
            "p50_ms": to_ms(self.percentile(50)),
            "p95_ms": to_ms(self.percentile(95)),
            "p99_ms": to_ms(self.percentile(99)),
            "max_ms": to_ms(max(self.samples)),
        }


class ServiceMetrics:
    """Counters, gauges and histograms of one :class:`CompileService`."""

    def __init__(self):
        self.tier_counts: Dict[str, int] = {tier: 0 for tier in TIERS}
        self.failures = 0
        self.cancellations = 0
        self.rejections = 0
        self.submitted = 0
        self.queue_depth = 0
        self.queue_depth_peak = 0
        self.wait = LatencyHistogram("wait")
        self.compute = LatencyHistogram("compute")
        self.total = LatencyHistogram("total")

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count_tier(self, tier: str) -> None:
        if tier not in self.tier_counts:
            raise ValueError(f"unknown tier {tier!r}; expected one of {TIERS}")
        self.tier_counts[tier] += 1

    def record_queue_depth(self, depth: int) -> None:
        self.queue_depth = depth
        self.queue_depth_peak = max(self.queue_depth_peak, depth)

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------
    @property
    def served(self) -> int:
        """Jobs that finished successfully (every tier, dedup included)."""
        return sum(self.tier_counts.values())

    def hit_rate(self, tier: str) -> float:
        """Fraction of served jobs answered by ``tier`` (0.0 when idle)."""
        if tier not in self.tier_counts:
            raise ValueError(f"unknown tier {tier!r}; expected one of {TIERS}")
        if self.served == 0:
            return 0.0
        return self.tier_counts[tier] / self.served

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of served jobs that avoided a compile entirely."""
        if self.served == 0:
            return 0.0
        avoided = self.served - self.tier_counts["compute"]
        return avoided / self.served

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """One JSON-serializable dict of everything above."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "tiers": dict(self.tier_counts),
            "hit_rates": {
                tier: round(self.hit_rate(tier), 6) for tier in TIERS
            },
            "cache_hit_rate": round(self.cache_hit_rate, 6),
            "failures": self.failures,
            "cancellations": self.cancellations,
            "rejections": self.rejections,
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "latency": {
                "wait": self.wait.summary(),
                "compute": self.compute.summary(),
                "total": self.total.summary(),
            },
        }
