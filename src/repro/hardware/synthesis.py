"""Topology-aware synthesis of Pauli-string exponentials.

The all-to-all template of :mod:`repro.circuits.pauli_exponential` CNOTs every
support qubit straight onto the target — on a real device each of those CNOTs
would be routed independently with SWAP chains.  This module instead *steers*
the parity ladder along the coupling graph: the support qubits are joined to
the target by the union of shortest paths (a Steiner-like tree rooted at the
target), and the ladder walks the tree edges.

The construction works on the symplectic Z-mask.  Writing the effective
rotation axis of ``C† · Rz(target) · C`` as a Z-mask evolved by the ladder
CNOTs (a CNOT with target ``t`` in the mask toggles its control's membership),
a CNOT from a mask qubit into its tree parent moves the parity one hop toward
the root; a non-support relay qubit costs one extra CNOT to be folded into the
mask first.  Processing tree nodes farthest-first therefore reduces the mask
``support(P) -> {target}`` with

* 1 CNOT per tree edge whose child and parent both carry parity, and
* 2 CNOTs per edge into a parity-free relay qubit,

and the mirrored ladder restores everything — the circuit is connectivity-
legal *by construction*, needs no SWAPs, and leaves the qubit layout fixed
(identity permutation).  On an all-to-all topology every support qubit is the
target's neighbor, so the construction reduces exactly to the Fig. 3(b)
star template with its ``2 (w - 1)`` CNOTs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, cnot, rz
from repro.circuits.pauli_exponential import basis_change_gates, validate_target
from repro.hardware.topology import Topology
from repro.obs.tracer import get_tracer
from repro.operators import PauliString


def steiner_parent_map(
    topology: Topology, terminals: Sequence[int], root: int
) -> Dict[int, int]:
    """Parent pointers of the union-of-shortest-paths tree rooted at ``root``.

    Every terminal is connected to the root along the BFS shortest path of the
    topology; the union of those paths is a tree (each node keeps the single
    predecessor of the root's BFS), returned as a child-to-parent map over all
    tree nodes except the root.
    """
    topology.validate_qubit(root)
    predecessor = topology.predecessor_matrix
    parent: Dict[int, int] = {}
    for terminal in terminals:
        topology.validate_qubit(terminal)
        node = terminal
        while node != root and node not in parent:
            before = int(predecessor[root, node])
            if before < 0:
                raise ValueError(
                    f"qubit {terminal} cannot reach target {root} in "
                    f"topology {topology.name!r}"
                )
            parent[node] = before
            node = before
    return parent


def _steered_ladder(
    string: PauliString, topology: Topology, target: int
) -> List[Gate]:
    """The CNOT half-ladder reducing ``support(string)`` onto ``target``."""
    parent = steiner_parent_map(topology, string.support, target)
    depth = {target: 0}

    def node_depth(node: int) -> int:
        if node not in depth:
            depth[node] = node_depth(parent[node]) + 1
        return depth[node]

    order = sorted(parent, key=lambda node: (-node_depth(node), node))
    mask = set(string.support)
    ladder: List[Gate] = []
    for node in order:
        if node not in mask:
            continue
        up = parent[node]
        if up not in mask:
            ladder.append(cnot(up, node))  # fold the relay qubit into the mask
            mask.add(up)
        ladder.append(cnot(node, up))
        mask.remove(node)
    assert mask == {target}, "parity ladder failed to reduce onto the target"
    return ladder


def routed_pauli_exponential_circuit(
    string: PauliString,
    angle: float,
    topology: Topology,
    target: Optional[int] = None,
) -> Circuit:
    """Synthesize ``exp(-i angle/2 · string)`` legally on ``topology``.

    The circuit acts on ``topology.n_qubits`` physical qubits with logical
    qubit ``q`` on physical qubit ``q`` (identity embedding); it contains only
    topology-edge CNOTs, and the layout after the circuit is unchanged.
    """
    if topology.n_qubits < string.n_qubits:
        raise ValueError(
            f"topology {topology.name!r} has {topology.n_qubits} qubits but "
            f"the Pauli string acts on {string.n_qubits}"
        )
    circuit = Circuit(topology.n_qubits)
    if string.is_identity:
        return circuit
    target = validate_target(string, target)

    pre_gates: List[Gate] = []
    post_gates: List[Gate] = []
    for qubit in string.support:
        pre, post = basis_change_gates(string[qubit], qubit)
        pre_gates.extend(pre)
        post_gates.extend(post)

    ladder = _steered_ladder(string, topology, target)
    circuit.extend(pre_gates)
    circuit.extend(ladder)
    circuit.append(rz(target, angle))
    circuit.extend(reversed(ladder))
    circuit.extend(post_gates)
    return circuit


def routed_pauli_exponential_cnot_count(
    string: PauliString, topology: Topology, target: Optional[int] = None
) -> int:
    """CNOT count of :func:`routed_pauli_exponential_circuit` (no synthesis)."""
    if string.is_identity:
        return 0
    target = validate_target(string, target)
    return 2 * len(_steered_ladder(string, topology, target))


def routed_exponential_sequence_circuit(
    sequence: Sequence[Tuple[PauliString, float, Optional[int]]],
    topology: Topology,
) -> Circuit:
    """Concatenated steered exponentials for ``(P, θ, target)`` terms.

    The result lives on the physical register and is connectivity-legal with
    the identity layout throughout; run
    :func:`repro.circuits.optimize_circuit` on it to realize the gate-level
    interface cancellations (the peephole pass only removes or merges gates,
    so legality is preserved).
    """
    with get_tracer().span(
        "hardware.steered_synthesis",
        topology=topology.name,
        n_terms=len(sequence),
        n_qubits=topology.n_qubits,
    ) as span:
        circuit = Circuit(topology.n_qubits)
        for string, angle, target in sequence:
            circuit = circuit.compose(
                routed_pauli_exponential_circuit(string, angle, topology, target)
            )
        span.set_attribute("n_gates", len(circuit.gates))
    return circuit
