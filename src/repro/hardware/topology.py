"""Device coupling-graph model for connectivity-aware compilation.

A :class:`Topology` is an undirected coupling graph on a fixed number of
physical qubits: a two-qubit gate may only execute on a pair of qubits joined
by an edge.  The class is a frozen dataclass over canonical edge tuples, so a
topology is hashable, participates in :class:`~repro.core.config.CompilerConfig`
equality and cache fingerprints, and can be shared freely between threads and
worker processes.  All-pairs BFS distance and predecessor matrices are computed
once per instance and cached outside the dataclass fields (they never enter
equality or hashing).

Constructors cover the standard device families:

* :meth:`Topology.all_to_all` — the paper's implicit Table-I assumption;
* :meth:`Topology.line` / :meth:`Topology.ring` — 1-D chains (trapped ions,
  early superconducting devices);
* :meth:`Topology.grid` — 2-D square lattices (Google Sycamore style);
* :meth:`Topology.heavy_hex` — the IBM heavy-hexagon tiling (degree ≤ 3);
* :meth:`Topology.from_edges` — arbitrary user-supplied coupling maps.

This module deliberately imports nothing from the rest of :mod:`repro`, so the
low-level config layer can depend on it without cycles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

#: Canonical undirected edge: (low qubit, high qubit).
Edge = Tuple[int, int]


def _canonical_edges(edges: Iterable[Sequence[int]], n_qubits: int) -> Tuple[Edge, ...]:
    """Validate, normalize and sort an edge list into canonical form."""
    seen = set()
    for edge in edges:
        if len(edge) != 2:
            raise ValueError(f"an edge needs exactly two qubits, got {tuple(edge)}")
        a, b = int(edge[0]), int(edge[1])
        if a == b:
            raise ValueError(f"self-loop edge ({a}, {b}) is not a coupling")
        if not (0 <= a < n_qubits and 0 <= b < n_qubits):
            raise ValueError(
                f"edge ({a}, {b}) is outside a register of {n_qubits} qubits"
            )
        seen.add((min(a, b), max(a, b)))
    return tuple(sorted(seen))


@dataclass(frozen=True)
class Topology:
    """An undirected coupling graph on ``n_qubits`` physical qubits.

    Equality, hashing and ``dataclasses.astuple`` (used by config
    fingerprints) see only ``n_qubits``, ``edges`` and ``name``; the BFS
    caches are lazy instance state.
    """

    n_qubits: int
    edges: Tuple[Edge, ...]
    name: str = "custom"

    def __post_init__(self):
        if self.n_qubits <= 0:
            raise ValueError("a topology needs at least one qubit")
        object.__setattr__(
            self, "edges", _canonical_edges(self.edges, self.n_qubits)
        )
        # Lazy caches (adjacency, distance, predecessor); not dataclass fields,
        # so they stay out of equality, hashing and astuple fingerprints.
        object.__setattr__(self, "_cache", {})

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, n_qubits: int, edges: Iterable[Sequence[int]], name: str = "custom"
    ) -> "Topology":
        """A topology from an arbitrary coupling map (edges are normalized)."""
        return cls(n_qubits=n_qubits, edges=tuple(tuple(e) for e in edges), name=name)

    @classmethod
    def all_to_all(cls, n_qubits: int) -> "Topology":
        """Full connectivity — every pair of qubits is coupled."""
        edges = tuple(
            (a, b) for a in range(n_qubits) for b in range(a + 1, n_qubits)
        )
        return cls(n_qubits=n_qubits, edges=edges, name=f"all-to-all-{n_qubits}")

    @classmethod
    def line(cls, n_qubits: int) -> "Topology":
        """A 1-D open chain ``0 - 1 - ... - (n-1)``."""
        edges = tuple((q, q + 1) for q in range(n_qubits - 1))
        return cls(n_qubits=n_qubits, edges=edges, name=f"line-{n_qubits}")

    @classmethod
    def ring(cls, n_qubits: int) -> "Topology":
        """A 1-D closed chain (the line plus the wrap-around edge)."""
        edges = [(q, q + 1) for q in range(n_qubits - 1)]
        if n_qubits > 2:
            edges.append((0, n_qubits - 1))
        return cls(n_qubits=n_qubits, edges=tuple(edges), name=f"ring-{n_qubits}")

    @classmethod
    def grid(cls, rows: int, cols: int) -> "Topology":
        """A ``rows x cols`` square lattice, row-major qubit numbering."""
        if rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        edges = []
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        return cls(
            n_qubits=rows * cols, edges=tuple(edges), name=f"grid-{rows}x{cols}"
        )

    @classmethod
    def heavy_hex(cls, rows: int = 1, cols: int = 1) -> "Topology":
        """An IBM-style heavy-hexagon tiling of ``rows x cols`` hexagon cells.

        ``rows + 1`` horizontal chains of ``4 cols + 1`` qubits each are joined
        by bridge qubits: between chains ``r`` and ``r + 1`` a bridge sits at
        every column ``c`` with ``c % 4 == 0`` (even ``r``) or ``c % 4 == 2``
        (odd ``r``).  Every qubit has degree at most three, the defining
        heavy-hex property.
        """
        if rows <= 0 or cols <= 0:
            raise ValueError("heavy-hex dimensions must be positive")
        row_len = 4 * cols + 1
        n_chain = (rows + 1) * row_len
        edges: List[Edge] = []
        for r in range(rows + 1):
            base = r * row_len
            edges.extend((base + c, base + c + 1) for c in range(row_len - 1))
        next_qubit = n_chain
        for r in range(rows):
            offset = 0 if r % 2 == 0 else 2
            for c in range(offset, row_len, 4):
                bridge = next_qubit
                next_qubit += 1
                edges.append((r * row_len + c, bridge))
                edges.append((bridge, (r + 1) * row_len + c))
        return cls(
            n_qubits=next_qubit, edges=tuple(edges), name=f"heavy-hex-{rows}x{cols}"
        )

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def _adjacency(self) -> Tuple[Tuple[int, ...], ...]:
        cache = self._cache  # type: ignore[attr-defined]
        if "adjacency" not in cache:
            neighbors: List[List[int]] = [[] for _ in range(self.n_qubits)]
            for a, b in self.edges:
                neighbors[a].append(b)
                neighbors[b].append(a)
            cache["adjacency"] = tuple(tuple(sorted(ns)) for ns in neighbors)
        return cache["adjacency"]

    def neighbors(self, qubit: int) -> Tuple[int, ...]:
        """Sorted qubits coupled to ``qubit``."""
        self.validate_qubit(qubit)
        return self._adjacency()[qubit]

    def degree(self, qubit: int) -> int:
        return len(self.neighbors(qubit))

    def is_edge(self, a: int, b: int) -> bool:
        """True if a two-qubit gate may act directly on ``(a, b)``."""
        self.validate_qubit(a)
        self.validate_qubit(b)
        return a != b and b in self._adjacency()[a]

    def validate_qubit(self, qubit: int) -> None:
        if not (0 <= qubit < self.n_qubits):
            raise ValueError(
                f"qubit {qubit} is outside topology {self.name!r} "
                f"of {self.n_qubits} qubits"
            )

    # ------------------------------------------------------------------
    # Cached BFS distance / predecessor matrices
    # ------------------------------------------------------------------
    def _bfs_matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        cache = self._cache  # type: ignore[attr-defined]
        if "bfs" not in cache:
            n = self.n_qubits
            adjacency = self._adjacency()
            distance = np.full((n, n), -1, dtype=np.int64)
            predecessor = np.full((n, n), -1, dtype=np.int64)
            for source in range(n):
                distance[source, source] = 0
                queue = deque([source])
                while queue:
                    current = queue.popleft()
                    for neighbor in adjacency[current]:
                        if distance[source, neighbor] < 0:
                            distance[source, neighbor] = distance[source, current] + 1
                            predecessor[source, neighbor] = current
                            queue.append(neighbor)
            distance.flags.writeable = False
            predecessor.flags.writeable = False
            cache["bfs"] = (distance, predecessor)
        return cache["bfs"]

    @property
    def distance_matrix(self) -> np.ndarray:
        """All-pairs hop distances (read-only); ``-1`` marks unreachable pairs."""
        return self._bfs_matrices()[0]

    @property
    def predecessor_matrix(self) -> np.ndarray:
        """``P[s, v]`` is ``v``'s predecessor on a shortest ``s -> v`` path."""
        return self._bfs_matrices()[1]

    def distance(self, a: int, b: int) -> int:
        """Hop distance between two qubits (``-1`` if disconnected)."""
        self.validate_qubit(a)
        self.validate_qubit(b)
        return int(self.distance_matrix[a, b])

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One shortest path ``[a, ..., b]`` (BFS tie-break: lowest neighbor)."""
        self.validate_qubit(a)
        self.validate_qubit(b)
        if self.distance_matrix[a, b] < 0:
            raise ValueError(
                f"qubits {a} and {b} are disconnected in topology {self.name!r}"
            )
        predecessor = self.predecessor_matrix
        path = [b]
        while path[-1] != a:
            path.append(int(predecessor[a, path[-1]]))
        return path[::-1]

    @property
    def is_connected(self) -> bool:
        return bool(np.all(self.distance_matrix >= 0))

    def require_connected(self) -> None:
        """Raise if any qubit pair is unreachable (routing needs one component)."""
        if not self.is_connected:
            distance = self.distance_matrix
            a, b = np.argwhere(distance < 0)[0]
            raise ValueError(
                f"topology {self.name!r} is disconnected: no path between "
                f"qubits {int(a)} and {int(b)}"
            )

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, n_qubits={self.n_qubits}, "
            f"n_edges={self.n_edges})"
        )


#: Topology family names accepted by :func:`topology_for`.
TOPOLOGY_KINDS = ("all-to-all", "line", "ring", "grid", "heavy-hex")


def topology_for(kind: str, n_qubits: int) -> Topology:
    """The smallest standard topology of a family covering ``n_qubits``.

    ``grid`` picks the near-square ``rows x cols`` with ``rows * cols >=
    n_qubits``; ``heavy-hex`` picks the smallest tiling with enough qubits.
    The returned topology may have more physical qubits than requested —
    routing places the logical register on the first qubits and uses the rest
    as ancilla space.
    """
    if n_qubits <= 0:
        raise ValueError("n_qubits must be positive")
    if kind == "all-to-all":
        return Topology.all_to_all(n_qubits)
    if kind == "line":
        return Topology.line(n_qubits)
    if kind == "ring":
        return Topology.ring(n_qubits)
    if kind == "grid":
        rows = max(1, int(np.sqrt(n_qubits)))
        cols = -(-n_qubits // rows)
        return Topology.grid(rows, cols)
    if kind == "heavy-hex":
        best: Dict[str, Topology] = {}
        for rows in range(1, n_qubits + 1):
            for cols in range(1, n_qubits + 1):
                candidate = Topology.heavy_hex(rows, cols)
                if candidate.n_qubits >= n_qubits:
                    current = best.get("topology")
                    if current is None or candidate.n_qubits < current.n_qubits:
                        best["topology"] = candidate
                    break  # wider tilings only grow
            if "topology" in best and rows > 1:
                break  # taller tilings only grow past the first hit
        return best["topology"]
    raise ValueError(f"unknown topology kind {kind!r}; choose from {TOPOLOGY_KINDS}")
