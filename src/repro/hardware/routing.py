"""SWAP routing of circuits onto a device :class:`~repro.hardware.topology.Topology`.

:func:`route_circuit` implements a SABRE-style heuristic (Li, Ding & Xie,
ASPLOS 2019): gates execute as soon as their operands are adjacent on the
coupling graph; when the whole front layer is blocked, one SWAP is inserted,
chosen among the edges incident to the blocked gates' qubits by a score that
sums the front-layer distances plus a decayed lookahead over the next
two-qubit gates.  A stall counter forces shortest-path progress on the oldest
blocked gate if the heuristic ping-pongs, so routing always terminates.

Guarantees (covered by tests/hardware/test_routing.py):

* every two-qubit gate of the routed circuit lies on a topology edge;
* the routed circuit equals the original up to the reported logical-to-
  physical permutation (``RoutingResult.undo_permutation_circuit`` closes the
  loop exactly);
* the result is a deterministic function of ``(circuit, topology, seed,
  initial_layout, lookahead)`` — ties between equal-score SWAPs are broken by
  the seeded generator, everything else is order-deterministic.

:func:`naive_route_circuit` is the reference nearest-neighbour strategy (swap
the control next to the target along a shortest path, execute, swap back); it
restores the identity permutation after every gate and serves as the
routing-overhead baseline in ``benchmarks/bench_routing.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, cnot
from repro.hardware.topology import Topology
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

#: CNOTs per SWAP under the CNOT + single-qubit gate set.
SWAP_CNOT_COST = 3

#: Router traffic across every strategy (SABRE and naive), in the global
#: obs registry: how many circuits were routed and how many SWAPs that cost.
_ROUTE_CALLS = get_metrics().counter("hardware.route.calls")
_ROUTE_SWAPS = get_metrics().counter("hardware.route.swaps")


def decompose_swaps(circuit: Circuit) -> Circuit:
    """Replace every SWAP gate by its three-CNOT realization."""
    out = Circuit(circuit.n_qubits)
    for gate in circuit:
        if gate.name == "SWAP":
            a, b = gate.qubits
            out.extend([cnot(a, b), cnot(b, a), cnot(a, b)])
        else:
            out.append(gate)
    return out


@dataclass(frozen=True)
class RoutingMetrics:
    """Hashable summary of one routing run (attached to ``CompileResult``).

    Counts and depths are measured on the SWAP-decomposed circuit, so
    ``cnot_count`` is directly comparable with the Table-I numbers.
    """

    topology: str
    n_swaps: int
    cnot_count: int
    depth: int
    two_qubit_depth: int
    gate_histogram: Tuple[Tuple[str, int], ...]


@dataclass
class RoutingResult:
    """A routed circuit plus the layout bookkeeping needed to verify it.

    ``initial_layout`` / ``final_layout`` map logical qubit ``q`` to the
    physical qubit holding it before / after the routed circuit runs.
    """

    circuit: Circuit
    topology: Topology
    initial_layout: Tuple[int, ...]
    final_layout: Tuple[int, ...]
    n_swaps: int

    @property
    def initial_inverse_layout(self) -> Tuple[int, ...]:
        """Physical-to-logical map before the circuit runs (``-1``: unoccupied)."""
        return _inverse_layout(self.initial_layout, self.topology.n_qubits)

    @property
    def final_inverse_layout(self) -> Tuple[int, ...]:
        """Physical-to-logical map after the circuit runs (``-1``: unoccupied)."""
        return _inverse_layout(self.final_layout, self.topology.n_qubits)

    def decomposed(self) -> Circuit:
        """The routed circuit with SWAPs expanded into CNOT triples."""
        return decompose_swaps(self.circuit)

    @property
    def routed_cnot_count(self) -> int:
        """CNOT count with every SWAP charged at three CNOTs."""
        return self.circuit.cnot_count + SWAP_CNOT_COST * self.n_swaps

    def metrics(self) -> RoutingMetrics:
        decomposed = self.decomposed()
        return RoutingMetrics(
            topology=self.topology.name,
            n_swaps=self.n_swaps,
            cnot_count=decomposed.cnot_count,
            depth=decomposed.depth(),
            two_qubit_depth=decomposed.two_qubit_depth(),
            gate_histogram=tuple(sorted(decomposed.gate_histogram().items())),
        )

    def undo_permutation_circuit(self) -> Circuit:
        """SWAP gates returning every logical qubit to its initial position.

        Composing ``circuit + undo_permutation_circuit()`` yields a circuit
        that equals the original (embedded on the physical register) exactly;
        the SWAPs here ignore connectivity — they exist for verification, not
        for execution.
        """
        n = self.circuit.n_qubits
        holder: Dict[int, Optional[int]] = {p: None for p in range(n)}
        position: Dict[int, int] = {}
        for logical, physical in enumerate(self.final_layout):
            holder[physical] = logical
            position[logical] = physical
        undo = Circuit(n)
        for logical, wanted in enumerate(self.initial_layout):
            current = position[logical]
            if current == wanted:
                continue
            undo.append(Gate("SWAP", (current, wanted)))
            displaced = holder[wanted]
            holder[wanted], holder[current] = logical, displaced
            position[logical] = wanted
            if displaced is not None:
                position[displaced] = current
        return undo


def _inverse_layout(layout: Sequence[int], n_physical: int) -> Tuple[int, ...]:
    """Invert a logical-to-physical layout; unoccupied physicals map to ``-1``."""
    inverse = [-1] * n_physical
    for logical, physical in enumerate(layout):
        inverse[physical] = logical
    return tuple(inverse)


def _resolve_layout(
    n_logical: int, n_physical: int, initial_layout: Optional[Sequence[int]]
) -> List[int]:
    if initial_layout is None:
        return list(range(n_logical))
    layout = [int(p) for p in initial_layout]
    if len(layout) != n_logical:
        raise ValueError(
            f"initial_layout must place all {n_logical} logical qubits, "
            f"got {len(layout)} entries"
        )
    if len(set(layout)) != len(layout) or any(
        not (0 <= p < n_physical) for p in layout
    ):
        raise ValueError(
            f"initial_layout {layout} is not an injection into "
            f"{n_physical} physical qubits"
        )
    return layout


def route_circuit(
    circuit: Circuit,
    topology: Topology,
    seed: Optional[int] = 0,
    lookahead: int = 20,
    lookahead_weight: float = 0.5,
    initial_layout: Optional[Sequence[int]] = None,
    max_stall: Optional[int] = None,
) -> RoutingResult:
    """Route a circuit onto a topology with SABRE-style SWAP insertion.

    Parameters
    ----------
    circuit:
        The logical circuit; ``circuit.n_qubits`` must fit in the topology.
    topology:
        The target coupling graph (must be connected).
    seed:
        Seeds the tie-breaking generator; a fixed seed makes routing fully
        deterministic.  ``None`` falls back to seed 0 (routing never draws
        from entropy).
    lookahead:
        Number of upcoming two-qubit gates scored beyond the front layer.
    lookahead_weight:
        Relative weight of the lookahead term in the SWAP score.
    initial_layout:
        Logical-to-physical placement; identity when omitted.
    max_stall:
        SWAPs tolerated without executing a gate before the router forces
        shortest-path progress on the oldest blocked gate (a termination
        guarantee, rarely triggered).
    """
    with get_tracer().span(
        "hardware.route",
        strategy="sabre",
        topology=topology.name,
        n_gates=len(circuit.gates),
    ) as route_span:
        result = _route_circuit_sabre(
            circuit,
            topology,
            seed=seed,
            lookahead=lookahead,
            lookahead_weight=lookahead_weight,
            initial_layout=initial_layout,
            max_stall=max_stall,
        )
        route_span.set_attribute("n_swaps", result.n_swaps)
    _ROUTE_CALLS.inc()
    _ROUTE_SWAPS.inc(result.n_swaps)
    return result


def _route_circuit_sabre(
    circuit: Circuit,
    topology: Topology,
    seed: Optional[int],
    lookahead: int,
    lookahead_weight: float,
    initial_layout: Optional[Sequence[int]],
    max_stall: Optional[int],
) -> RoutingResult:
    """The SABRE heuristic itself (tracing and accounting live in route_circuit)."""
    n_logical = circuit.n_qubits
    n_physical = topology.n_qubits
    if n_physical < n_logical:
        raise ValueError(
            f"topology {topology.name!r} has {n_physical} qubits but the "
            f"circuit needs {n_logical}"
        )
    topology.require_connected()
    layout = _resolve_layout(n_logical, n_physical, initial_layout)
    initial = tuple(layout)
    # Inverse layout (physical -> logical, -1 when unoccupied), maintained
    # alongside `layout` so applying a SWAP is O(1) instead of two O(n)
    # scans over the full layout.
    inverse = list(_inverse_layout(layout, n_physical))
    rng = np.random.default_rng(0 if seed is None else seed)
    distance = topology.distance_matrix
    if max_stall is None:
        max_stall = max(4, 2 * n_physical)

    gates = list(circuit.gates)
    n_gates = len(gates)
    successors: List[List[int]] = [[] for _ in range(n_gates)]
    indegree = [0] * n_gates
    last_on_qubit: Dict[int, int] = {}
    for index, gate in enumerate(gates):
        for qubit in gate.qubits:
            previous = last_on_qubit.get(qubit)
            if previous is not None:
                successors[previous].append(index)
                indegree[index] += 1
            last_on_qubit[qubit] = index
    ready = sorted(i for i in range(n_gates) if indegree[i] == 0)

    routed = Circuit(n_physical)
    executed = 0
    n_swaps = 0
    stall = 0
    last_swap: Optional[Tuple[int, int]] = None

    def emit(index: int) -> None:
        gate = gates[index]
        routed.append(
            Gate(gate.name, tuple(layout[q] for q in gate.qubits), gate.parameter)
        )

    def release(index: int) -> None:
        for successor in successors[index]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)

    # Static order of two-qubit gates plus a monotone cursor past the
    # executed prefix, so collecting the lookahead window no longer rescans
    # every gate of the circuit per inserted SWAP.
    two_qubit_order = [i for i, gate in enumerate(gates) if gate.is_two_qubit]
    two_qubit_cursor = 0

    def lookahead_window() -> List[int]:
        nonlocal two_qubit_cursor
        while (
            two_qubit_cursor < len(two_qubit_order)
            and indegree[two_qubit_order[two_qubit_cursor]] < 0
        ):
            two_qubit_cursor += 1
        window = []
        blocked = set(ready)
        for position in range(two_qubit_cursor, len(two_qubit_order)):
            index = two_qubit_order[position]
            if indegree[index] < 0 or index in blocked:
                continue
            window.append(index)
            if len(window) >= lookahead:
                break
        return window

    def apply_swap(edge: Tuple[int, int]) -> None:
        nonlocal n_swaps, stall, last_swap
        a, b = edge
        routed.append(Gate("SWAP", (a, b)))
        logical_a, logical_b = inverse[a], inverse[b]
        if logical_a >= 0:
            layout[logical_a] = b
        if logical_b >= 0:
            layout[logical_b] = a
        inverse[a], inverse[b] = logical_b, logical_a
        n_swaps += 1
        stall += 1
        last_swap = edge

    while executed < n_gates:
        progressed = True
        while progressed:
            progressed = False
            for index in sorted(ready):
                gate = gates[index]
                runnable = gate.is_single_qubit or topology.is_edge(
                    layout[gate.qubits[0]], layout[gate.qubits[1]]
                )
                if runnable:
                    emit(index)
                    ready.remove(index)
                    indegree[index] = -1  # sentinel: executed
                    release(index)
                    executed += 1
                    progressed = True
                    stall = 0
                    last_swap = None
        if executed == n_gates:
            break

        front = sorted(ready)
        if stall >= max_stall:
            # Forced progress: walk the oldest blocked gate's control one
            # step along a shortest path toward its target.
            gate = gates[front[0]]
            path = topology.shortest_path(
                layout[gate.qubits[0]], layout[gate.qubits[1]]
            )
            apply_swap((path[0], path[1]))
            continue

        front_pairs = [
            (layout[gates[i].qubits[0]], layout[gates[i].qubits[1]]) for i in front
        ]
        window = lookahead_window()
        window_pairs = [
            (layout[gates[i].qubits[0]], layout[gates[i].qubits[1]]) for i in window
        ]
        candidates = sorted(
            {
                tuple(sorted((p, neighbor)))
                for pair in front_pairs
                for p in pair
                for neighbor in topology.neighbors(p)
            }
        )
        if last_swap in candidates and len(candidates) > 1:
            candidates.remove(last_swap)  # never undo the SWAP just inserted

        def score(edge: Tuple[int, int]) -> float:
            a, b = edge

            def moved(p: int) -> int:
                return b if p == a else a if p == b else p

            front_cost = sum(
                float(distance[moved(p), moved(q)]) for p, q in front_pairs
            )
            if window_pairs:
                ahead = sum(
                    float(distance[moved(p), moved(q)]) for p, q in window_pairs
                )
                front_cost += lookahead_weight * ahead / len(window_pairs)
            return front_cost

        # Builtin min/list comprehension instead of np.argmin-style reductions
        # on a small Python list (the ndarray conversion costs more than the
        # scan); the tie set and the seeded tie-break draw are unchanged.
        scores = [score(edge) for edge in candidates]
        minimum = min(scores)
        best = [i for i, value in enumerate(scores) if value == minimum]
        choice = best[0] if len(best) == 1 else int(rng.choice(best))
        apply_swap(candidates[choice])

    return RoutingResult(
        circuit=routed,
        topology=topology,
        initial_layout=initial,
        final_layout=tuple(layout),
        n_swaps=n_swaps,
    )


def naive_route_circuit(
    circuit: Circuit,
    topology: Topology,
    initial_layout: Optional[Sequence[int]] = None,
) -> RoutingResult:
    """Nearest-neighbour reference router: swap in, execute, swap back.

    Every two-qubit gate on non-adjacent qubits swaps its first operand along
    a shortest path until adjacent, executes, then reverses the swaps, so the
    layout (and hence the permutation) is restored after every gate.  This is
    the textbook ladder-routing bound that
    :func:`repro.hardware.synthesis.routed_pauli_exponential_circuit` and
    :func:`route_circuit` are measured against.
    """
    with get_tracer().span(
        "hardware.route",
        strategy="naive",
        topology=topology.name,
        n_gates=len(circuit.gates),
    ) as route_span:
        result = _naive_route_circuit(circuit, topology, initial_layout)
        route_span.set_attribute("n_swaps", result.n_swaps)
    _ROUTE_CALLS.inc()
    _ROUTE_SWAPS.inc(result.n_swaps)
    return result


def _naive_route_circuit(
    circuit: Circuit,
    topology: Topology,
    initial_layout: Optional[Sequence[int]],
) -> RoutingResult:
    n_logical = circuit.n_qubits
    n_physical = topology.n_qubits
    if n_physical < n_logical:
        raise ValueError(
            f"topology {topology.name!r} has {n_physical} qubits but the "
            f"circuit needs {n_logical}"
        )
    topology.require_connected()
    layout = _resolve_layout(n_logical, n_physical, initial_layout)
    initial = tuple(layout)
    routed = Circuit(n_physical)
    n_swaps = 0
    for gate in circuit:
        if gate.is_single_qubit:
            routed.append(Gate(gate.name, (layout[gate.qubits[0]],), gate.parameter))
            continue
        a, b = layout[gate.qubits[0]], layout[gate.qubits[1]]
        path = topology.shortest_path(a, b)
        swaps = [(path[i], path[i + 1]) for i in range(len(path) - 2)]
        for edge in swaps:
            routed.append(Gate("SWAP", edge))
        front = path[-2] if swaps else a
        routed.append(Gate(gate.name, (front, b), gate.parameter))
        for edge in reversed(swaps):
            routed.append(Gate("SWAP", edge))
        n_swaps += 2 * len(swaps)
    return RoutingResult(
        circuit=routed,
        topology=topology,
        initial_layout=initial,
        final_layout=initial,
        n_swaps=n_swaps,
    )
