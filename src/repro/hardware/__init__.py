"""Hardware topology model and connectivity-aware routing/synthesis.

The subpackage turns the abstract all-to-all Table-I circuits into
device-executable ones:

* :class:`~repro.hardware.topology.Topology` — frozen, hashable coupling
  graphs (line, ring, grid, heavy-hex, all-to-all, custom) with cached BFS
  distance/predecessor matrices;
* :func:`~repro.hardware.routing.route_circuit` — SABRE-style SWAP routing of
  arbitrary circuits, with :class:`~repro.hardware.routing.RoutingResult`
  recording the inserted SWAPs and the logical-to-physical permutation;
* :func:`~repro.hardware.synthesis.routed_pauli_exponential_circuit` —
  topology-steered parity ladders that synthesize Pauli exponentials
  connectivity-legally with zero SWAPs.

Set ``CompilerConfig(topology=...)`` to have every registered backend attach
:class:`~repro.hardware.routing.RoutingMetrics` to its ``CompileResult``.
"""

from repro.hardware.routing import (
    SWAP_CNOT_COST,
    RoutingMetrics,
    RoutingResult,
    decompose_swaps,
    naive_route_circuit,
    route_circuit,
)
from repro.hardware.synthesis import (
    routed_exponential_sequence_circuit,
    routed_pauli_exponential_circuit,
    routed_pauli_exponential_cnot_count,
    steiner_parent_map,
)
from repro.hardware.topology import TOPOLOGY_KINDS, Topology, topology_for

__all__ = [
    "SWAP_CNOT_COST",
    "TOPOLOGY_KINDS",
    "RoutingMetrics",
    "RoutingResult",
    "Topology",
    "decompose_swaps",
    "naive_route_circuit",
    "route_circuit",
    "routed_exponential_sequence_circuit",
    "routed_pauli_exponential_circuit",
    "routed_pauli_exponential_cnot_count",
    "steiner_parent_map",
    "topology_for",
]
